"""Optimizers and learning-rate schedulers.

The paper trains with AdamW (initial lr 1e-4) and a MultiStep decay of 0.1 at
epochs [500, 750, 875]; both are implemented here, plus plain SGD+momentum and
cosine decay used by ablations.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

import numpy as np

from .modules import Parameter

__all__ = ["SGD", "Adam", "AdamW", "MultiStepLR", "CosineLR", "clip_grad_norm"]


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so the global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for logging instability).
    """
    params = [p for p in params if p.grad is not None]
    total = math.sqrt(sum(float((p.grad * p.grad).sum()) for p in params))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class Optimizer:
    """Base: holds parameter list and a mutable learning rate.

    Subclass ``step()``s update ``p.data`` **in place** through a small
    shape-keyed scratch pool (``_buf``): every arithmetic step lands in a
    preallocated buffer via ``out=``, so repeated steps allocate nothing
    and every Tensor/plan that aliases a parameter array (including the
    compiled runtime's constant-folded weight views) observes the update.
    The ufunc sequences replay the original expressions exactly, so
    training trajectories are bit-identical to the allocating versions.
    """

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        self.lr = float(lr)
        self._bufs: dict = {}

    def _buf(self, shape, dtype, slot: int = 0) -> np.ndarray:
        key = (tuple(shape), np.dtype(dtype), slot)
        buf = self._bufs.get(key)
        if buf is None:
            buf = np.empty(key[0], dtype=key[1])
            self._bufs[key] = buf
        return buf

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with optional momentum and (coupled) weight decay."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                t = self._buf(p.data.shape,
                              np.result_type(g.dtype, p.data.dtype), 0)
                np.multiply(p.data, self.weight_decay, out=t)
                np.add(g, t, out=t)
                g = t
            if self.momentum:
                np.multiply(v, self.momentum, out=v)
                np.add(v, g, out=v)
                g = v
            u = self._buf(p.data.shape, g.dtype, 1)
            np.multiply(g, self.lr, out=u)
            np.subtract(p.data, u, out=p.data, casting="same_kind")


class Adam(Optimizer):
    """Adam (Kingma & Ba). ``weight_decay`` here is L2-coupled (classic)."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas: Sequence[float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.b1, self.b2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def _moment_update(self, g: np.ndarray, m: np.ndarray,
                       v: np.ndarray) -> None:
        """First/second-moment EMA updates, in place."""
        t = self._buf(g.shape, g.dtype, 1)
        np.multiply(m, self.b1, out=m)
        np.multiply(g, 1 - self.b1, out=t)
        np.add(m, t, out=m, casting="same_kind")
        np.multiply(v, self.b2, out=v)
        np.multiply(g, g, out=t)
        np.multiply(t, 1 - self.b2, out=t)
        np.add(v, t, out=v, casting="same_kind")

    def _apply_update(self, p: Parameter, m: np.ndarray, v: np.ndarray,
                      bc1: float, bc2: float) -> None:
        """``p.data -= lr * (m / bc1) / (sqrt(v / bc2) + eps)``, via out=."""
        t = self._buf(m.shape, m.dtype, 1)
        np.divide(m, bc1, out=t)
        np.multiply(t, self.lr, out=t)
        u = self._buf(v.shape, v.dtype, 2)
        np.divide(v, bc2, out=u)
        np.sqrt(u, out=u)
        np.add(u, self.eps, out=u)
        np.divide(t, u, out=t)
        np.subtract(p.data, t, out=p.data, casting="same_kind")

    def step(self) -> None:
        self.t += 1
        bc1 = 1.0 - self.b1 ** self.t
        bc2 = 1.0 - self.b2 ** self.t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                t0 = self._buf(p.data.shape,
                               np.result_type(g.dtype, p.data.dtype), 0)
                np.multiply(p.data, self.weight_decay, out=t0)
                np.add(g, t0, out=t0)
                g = t0
            self._moment_update(g, m, v)
            self._apply_update(p, m, v, bc1, bc2)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter), as in the paper."""

    def step(self) -> None:
        self.t += 1
        bc1 = 1.0 - self.b1 ** self.t
        bc2 = 1.0 - self.b2 ** self.t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            self._moment_update(p.grad, m, v)
            if self.weight_decay:
                # Decoupled decay: p -= (lr * wd) * p, folding the scalars
                # first exactly as the original left-associated expression.
                t0 = self._buf(p.data.shape, p.data.dtype, 0)
                np.multiply(p.data, self.lr * self.weight_decay, out=t0)
                np.subtract(p.data, t0, out=p.data)
            self._apply_update(p, m, v, bc1, bc2)


class MultiStepLR:
    """Decay lr by ``gamma`` at each epoch in ``milestones`` (paper setup)."""

    def __init__(self, optimizer: Optimizer, milestones: Sequence[int],
                 gamma: float = 0.1):
        self.optimizer = optimizer
        self.milestones = sorted(milestones)
        self.gamma = gamma
        self.epoch = 0
        self._base_lr = optimizer.lr

    def step(self) -> None:
        self.epoch += 1
        decays = sum(1 for m in self.milestones if self.epoch >= m)
        self.optimizer.lr = self._base_lr * (self.gamma ** decays)

    @property
    def lr(self) -> float:
        return self.optimizer.lr


class CosineLR:
    """Cosine decay from base lr to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0,
                 warmup: int = 0):
        self.optimizer = optimizer
        self.total = total_epochs
        self.min_lr = min_lr
        self.warmup = warmup
        self.epoch = 0
        self._base_lr = optimizer.lr

    def step(self) -> None:
        self.epoch += 1
        if self.warmup and self.epoch <= self.warmup:
            self.optimizer.lr = self._base_lr * self.epoch / self.warmup
            return
        t = (self.epoch - self.warmup) / max(1, self.total - self.warmup)
        t = min(t, 1.0)
        self.optimizer.lr = (self.min_lr + 0.5 * (self._base_lr - self.min_lr)
                             * (1 + math.cos(math.pi * t)))

    @property
    def lr(self) -> float:
        return self.optimizer.lr
