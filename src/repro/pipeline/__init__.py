"""``repro.pipeline`` — batched, parallel, cached APF preprocessing.

The scale-out layer over :mod:`repro.patching`:

* :class:`BatchedAdaptivePatcher` — bit-identical batch kernels for
  Algorithm 1 stages 1-5 (screened sparse Canny, level-synchronous batched
  quadtree, batch-grouped gather)
* :class:`PatchPipeline` — worker pool + LRU sequence cache + fixed-length
  collation front-end
* :class:`CollatedBatch` / :func:`collate_batch` — the ``(B, L, C·Pm²)``
  token tensor + validity mask hand-off to :mod:`repro.models`
"""

from .batched import BatchedAdaptivePatcher
from .collate import CollatedBatch, collate_batch
from .engine import PatchPipeline

__all__ = ["BatchedAdaptivePatcher", "PatchPipeline", "CollatedBatch",
           "collate_batch"]
