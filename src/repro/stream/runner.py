"""Bounded-memory streaming loop over the existing inference stack.

:class:`StreamingRunner` walks a :class:`~repro.stream.planner.StreamPlan`
and keeps at most ``max_inflight`` macro-tiles resident at any instant: a
tile is read from the source, driven through the serving stack, reduced to
its class map, handed to the sink, and dropped — peak memory is set by the
tile size and ``max_inflight``, never by the scene.

Two drive modes over unchanged numerics:

* **Predictor mode** (``StreamingRunner(predictor)``) — strictly serial:
  each macro-tile expands to a
  :class:`~repro.serve.scheduler.TileNode` and drains through the shared
  :class:`~repro.serve.scheduler.WorkGraphScheduler` (the same plan
  cache, bucketing, and vectorized stitch every other front-end uses),
  so streamed class maps are **bit-identical** to the non-streamed
  per-tile reference. This is the mode the bench gate pins.
* **Engine mode** (``StreamingRunner(engine=engine)``) — overlapped:
  up to ``max_inflight`` tiles are submitted to the
  :class:`~repro.serve.engine.InferenceEngine` (continuous batcher, plan
  cache, result cache) before the oldest is awaited. Submission is
  backpressure-aware: :class:`EngineOverloaded` rejections first retire
  in-flight work, then honor the engine's ``retry_after`` hint — the
  runner never spins against a full queue and never grows its own. With
  a started engine, batch composition follows arrival timing (the usual
  serving caveat); with an unstarted engine the runner drives
  :meth:`InferenceEngine.step` itself, which keeps tests deterministic.

Checkpoint/resume is delegated to the sink: tiles already durable are
skipped (``resume=True``), so a killed run continues where it stopped and
— because per-tile outputs are pure functions of the tile — produces
byte-identical artifacts to an uninterrupted run.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import asdict, dataclass
from typing import Optional

import numpy as np

from ..perf.memory import TracedMemory
from ..serve.predictor import class_map
from ..serve.queueing import EngineOverloaded
from .planner import StreamPlan
from .source import TiledSource

__all__ = ["StreamingRunner", "StreamReport"]


@dataclass
class StreamReport:
    """What one :meth:`StreamingRunner.run` did (JSON-able via ``asdict``)."""

    tiles_total: int
    tiles_run: int
    tiles_skipped: int
    seconds: float
    peak_inflight: int
    backpressure_waits: int
    bytes_read: int
    working_set_bytes: int       #: planner's per-tile estimate
    scene_bytes: int             #: full-scene float64 cost (avoided)
    peak_traced_bytes: Optional[int] = None   #: measured (track_memory=True)
    #: Sparsity fast-path counters accrued by *this run* (plan counts,
    #: tokens skipped/merged, cache traffic) — ``None`` when the serving
    #: predictor has no sparsity runtime attached.
    sparsity: Optional[dict] = None

    def to_dict(self) -> dict:
        return asdict(self)


class StreamingRunner:
    """Stream a plan through a Predictor (serial) or InferenceEngine.

    Parameters
    ----------
    predictor:
        Serial bit-exact mode; mutually exclusive with ``engine``.
    engine:
        Overlapped mode with backpressure-aware submission.
    max_inflight:
        Macro-tiles resident at once (engine mode; predictor mode is 1).
    lane:
        Engine lane for streamed tiles. Defaults to ``"bulk"`` so a
        background slide job cannot starve interactive traffic.
    track_memory:
        Measure the run's peak traced allocation
        (:class:`~repro.perf.memory.TracedMemory`) into the report.
    tracer:
        Optional :class:`~repro.obs.Tracer`; the run emits ``tile.read``
        spans and ``tile.submit`` / ``tile.retire`` / ``tile.skip``
        instants on the ``stream`` track. Defaults to the engine's (or
        predictor's) tracer so one shared timeline covers both layers.
    """

    def __init__(self, predictor=None, *, engine=None, max_inflight: int = 2,
                 lane: str = "bulk", track_memory: bool = False, tracer=None):
        if (predictor is None) == (engine is None):
            raise ValueError("pass exactly one of predictor= or engine=")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.predictor = predictor
        self.engine = engine
        self.max_inflight = max_inflight if engine is not None else 1
        self.lane = lane
        self.track_memory = track_memory
        if tracer is None:
            owner = engine if engine is not None else predictor
            tracer = getattr(owner, "tracer", None)
        self.tracer = tracer if (tracer is not None and tracer.enabled) \
            else None

    # -- sparsity accounting ----------------------------------------------
    def _sparsity_counters(self) -> Optional[dict]:
        """Flat numeric snapshot of the serving predictor's sparsity stats."""
        owner = self.predictor if self.predictor is not None \
            else self.engine.predictor
        rt = getattr(owner, "sparsity", None)
        if rt is None:
            return None
        flat = {k: v for k, v in rt.stats.items() if isinstance(v, int)}
        flat.update({f"plans_{k}": v for k, v in rt.stats["plans"].items()})
        return flat

    # -- engine-mode plumbing ---------------------------------------------
    def _resolve(self, fut: Future):
        """Block until ``fut`` is done, driving an unstarted engine ourselves.

        Waits on a started engine in short polls, re-checking
        :attr:`InferenceEngine.is_running` each round: if the batcher
        thread dies mid-wait, the loop falls through to self-driving
        :meth:`InferenceEngine.step` (or raises) instead of blocking on a
        future a dead thread will never resolve.
        """
        while True:
            if self.engine.is_running:
                try:
                    return fut.result(timeout=0.1)
                except FutureTimeout:
                    continue
            if fut.done():
                return fut.result()
            if self.engine.step(force=True) is None and not fut.done():
                raise RuntimeError(
                    "engine queue drained but a streamed future is still "
                    "pending — was the engine stopped (or its batcher "
                    "killed) mid-run?")

    def _retire_oldest(self, inflight: deque, sink) -> None:
        tile, fut, to_class = inflight.popleft()
        value = self._resolve(fut)
        sink.write(tile, class_map(value) if to_class else value)
        if self.tracer is not None:
            self.tracer.instant("tile.retire", "stream", self.tracer.clock(),
                                args={"index": tile.index})

    def _submit(self, region: np.ndarray, kind: str, inflight: deque,
                sink) -> tuple:
        """Backpressure-aware submit → ``(future, needs_class_map, waits)``."""
        needed = region.shape[0] if kind == "volume" else 1
        if needed > self.engine.config.max_queue:
            # never admittable, even against an empty queue — raising here
            # beats retrying forever (volume admission is all-or-nothing)
            raise EngineOverloaded(
                f"a {needed}-slice macro-tile can never fit the engine queue "
                f"(max_queue={self.engine.config.max_queue}); deepen the "
                "queue or shrink the slab")
        waits = 0
        while True:
            try:
                if kind == "volume":
                    return self.engine.submit_volume(region, lane=self.lane), \
                        False, waits
                return self.engine.submit(region, lane=self.lane), True, waits
            except EngineOverloaded as exc:
                waits += 1
                if inflight:
                    self._retire_oldest(inflight, sink)   # free queue slots
                elif self.engine.is_running:
                    time.sleep(min(max(exc.retry_after, 1e-3), 0.05))
                elif self.engine.step(force=True) is None:
                    # empty queue yet still rejected despite the capacity
                    # pre-check — cannot make progress, surface it
                    raise

    # -- the streaming loop -----------------------------------------------
    def run(self, source: TiledSource, plan: StreamPlan, sink, *,
            resume: bool = True) -> StreamReport:
        """Stream every tile of ``plan`` from ``source`` into ``sink``.

        ``resume=True`` skips tiles the sink already holds (checkpoint
        semantics); ``resume=False`` discards prior artifacts first when
        the sink supports it.
        """
        if source.kind != plan.kind:
            raise ValueError(f"source kind {source.kind!r} does not match "
                             f"plan kind {plan.kind!r}")
        # volumes must match in every dim (slabs carry the in-plane shape
        # into the sink's artifact validation); images in the two spatial
        # dims (the channel count is the source's business)
        matched = (tuple(source.shape) == plan.scene_shape
                   if plan.kind == "volume"
                   else tuple(source.shape[:2]) == plan.scene_shape[:2])
        if not matched:
            raise ValueError(f"source shape {source.shape} does not match "
                             f"planned scene {plan.scene_shape}")
        if not resume and hasattr(sink, "discard"):
            sink.discard()
        done = sink.completed(plan) if resume and hasattr(sink, "completed") \
            else set()

        report = StreamReport(
            tiles_total=len(plan.tiles), tiles_run=0,
            tiles_skipped=len(done), seconds=0.0, peak_inflight=0,
            backpressure_waits=0, bytes_read=0,
            working_set_bytes=plan.working_set_bytes(),
            scene_bytes=plan.scene_bytes)
        inflight: deque = deque()
        sparse_before = self._sparsity_counters()
        tracer = TracedMemory() if self.track_memory else None
        t0 = time.perf_counter()
        if tracer is not None:
            tracer.__enter__()
        try:
            tr = self.tracer
            for tile in plan.tiles:
                if tile.index in done:
                    if tr is not None:
                        tr.instant("tile.skip", "stream", tr.clock(),
                                   args={"index": tile.index})
                    continue
                r0 = tr.clock() if tr is not None else 0.0
                region = source.read_region(tile.origin, tile.size)
                if tr is not None:
                    tr.complete("tile.read", "stream", r0, tr.clock(),
                                args={"index": tile.index,
                                      "bytes": int(region.nbytes)})
                report.bytes_read += region.nbytes
                if self.engine is not None:
                    fut, to_class, waits = self._submit(region, plan.kind,
                                                        inflight, sink)
                    report.backpressure_waits += waits
                    if tr is not None:
                        tr.instant("tile.submit", "stream", tr.clock(),
                                   args={"index": tile.index, "waits": waits,
                                         "lane": self.lane})
                    inflight.append((tile, fut, to_class))
                    report.peak_inflight = max(report.peak_inflight,
                                               len(inflight))
                    while len(inflight) >= self.max_inflight:
                        self._retire_oldest(inflight, sink)
                else:
                    report.peak_inflight = max(report.peak_inflight, 1)
                    sink.write(tile, self._predict_tile(region, plan.kind))
                    if tr is not None:
                        tr.instant("tile.retire", "stream", tr.clock(),
                                   args={"index": tile.index})
                report.tiles_run += 1
                del region
                if tracer is not None:
                    tracer.update()
            while inflight:
                self._retire_oldest(inflight, sink)
        except EngineOverloaded:
            # A mid-run rejection (e.g. a slab that can never fit the
            # queue) must not orphan tiles the engine already accepted:
            # their futures hold queue slots and their results would be
            # lost to the sink, breaking resume. Retire everything
            # in flight — those tiles become durable checkpoints — and
            # only then surface the overload.
            while inflight:
                self._retire_oldest(inflight, sink)
            raise
        finally:
            if tracer is not None:
                tracer.__exit__(None, None, None)
                report.peak_traced_bytes = tracer.peak_bytes
        report.seconds = time.perf_counter() - t0
        sparse_after = self._sparsity_counters()
        if sparse_after is not None:
            before = sparse_before or {}
            report.sparsity = {k: v - before.get(k, 0)
                               for k, v in sparse_after.items()}
        if hasattr(sink, "finalize"):
            sink.finalize(plan, report.to_dict())
        return report

    def _predict_tile(self, region: np.ndarray, kind: str) -> np.ndarray:
        """Predictor mode: macro-tile -> TileNode -> drain -> reduce.

        The tile expands through the shared work-graph scheduler — per
        slice for a ``(d, Z, Z)`` slab, a single child for an image tile
        — so the streamed path rides the exact bucketing, plan cache and
        stitch every other front-end uses.
        """
        sched = self.predictor.scheduler
        node = sched.tile_node(region, kind)
        sched.drain(node.children)
        return sched.reduce_tile(node)
