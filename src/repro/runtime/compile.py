"""Graph compilation: folding, fusion, liveness-planned buffers, execution.

:func:`compile_graph` lowers a traced :class:`~repro.runtime.trace.Graph`
into an :class:`ExecutionPlan` — a flat list of closures over concrete,
preallocated NumPy arrays:

1. **Dead-code elimination** — only nodes reachable from the output run.
2. **Constant folding** — ops whose operands are all trace-time constants
   (weight transposes, positional-table slices, coerced scalars) evaluate
   once at compile time. View kernels fold to *views*, so in-place weight
   updates stay visible to the plan.
3. **Fusion** — the transformer hot spots collapse into single steps:
   ``linear`` / ``linear_gelu`` (matmul + bias add + GELU in one buffer)
   and ``sdpa`` (QK^T → scale → bias → softmax, all in-place on one scores
   buffer, then the value matmul). LayerNorm runs as a single out= kernel.
4. **Liveness-based buffer reuse** — every op output draws from a
   (shape, dtype)-keyed pool; an operand's buffer returns to the pool at
   its last use, and elementwise ops whose dying input matches the output
   shape run fully in place. On a 1-CPU, bandwidth-bound host this — not
   FLOP reduction — is where the speedup lives.

Execution replays *exactly* the kernel arithmetic the eager tape ran
(``out=`` ufuncs produce identical bits), so a compiled forward is
bit-identical to the eager ``no_grad`` forward it was traced from.
"""

from __future__ import annotations

from collections import Counter
from time import perf_counter as _perf_counter
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..nn import kernels as K
from ..perf.flops import kernel_cost
from .trace import VIEW_OPS, Graph, trace

__all__ = ["ExecutionPlan", "CompiledModel", "compile_graph", "compile_model"]

#: Kernels whose out= variant may alias an input buffer (elementwise, or
#: structured kernels written to tolerate out-aliasing — see kernels.py).
_INPLACE_SAFE = frozenset({
    "add", "sub", "mul", "div", "neg", "exp", "log", "sqrt", "tanh",
    "relu", "abs", "clip", "gelu", "softmax", "layer_norm",
})


class _BufferPool:
    """(shape, dtype)-keyed free list of plan-owned arrays."""

    def __init__(self) -> None:
        self._free: Dict[tuple, List[np.ndarray]] = {}
        self.allocated = 0
        self.reused = 0

    def get(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        key = (tuple(shape), np.dtype(dtype))
        free = self._free.get(key)
        if free:
            self.reused += 1
            return free.pop()
        self.allocated += 1
        return np.empty(key[0], dtype=key[1])

    def release(self, arr: np.ndarray) -> None:
        self._free.setdefault((arr.shape, arr.dtype), []).append(arr)


class ExecutionPlan:
    """A compiled graph: preallocated buffers + a flat step list.

    ``run(feeds)`` copies the feeds into fixed input buffers, fires each
    step, and returns the output array. The returned array is **owned by
    the plan** and overwritten by the next ``run`` — copy it to persist.
    """

    def __init__(self, signature: tuple) -> None:
        self.signature = signature
        self._steps: List[Tuple[str, Callable[[], None]]] = []
        self._step_meta: List[Optional[dict]] = []
        self._input_bufs: Dict[str, np.ndarray] = {}
        self._out: Optional[np.ndarray] = None
        self._scratch: Dict[tuple, np.ndarray] = {}
        self.stats: Dict[str, int] = {}
        #: Optional ``hook(step_name, seconds, meta)`` — when set, ``run``
        #: times each step (``perf_counter``) and reports it with the
        #: compile-time FLOP/byte estimate stamped on the step. ``None``
        #: (the default) keeps the untimed loop: the hot path pays one
        #: attribute load per ``run``, nothing per step.
        self.profile_hook: Optional[Callable[[str, float, Optional[dict]],
                                             None]] = None

    # -- build-time helpers (used by compile_graph) ----------------------
    def scratch(self, shape, dtype) -> np.ndarray:
        """One persistent scratch array per (shape, dtype) — kernels use at
        most one scratch of a given shape per call."""
        key = (tuple(shape), np.dtype(dtype))
        buf = self._scratch.get(key)
        if buf is None:
            buf = np.empty(key[0], dtype=key[1])
            self._scratch[key] = buf
        return buf

    def add_step(self, name: str, fn: Callable[[], None],
                 meta: Optional[dict] = None) -> None:
        self._steps.append((name, fn))
        self._step_meta.append(meta)

    # -- run time --------------------------------------------------------
    def run(self, feeds: Dict[str, np.ndarray]) -> np.ndarray:
        bufs = self._input_bufs
        if len(feeds) != len(bufs):
            raise ValueError(f"plan expects inputs {sorted(bufs)}, "
                             f"got {sorted(feeds)}")
        for name, buf in bufs.items():
            np.copyto(buf, feeds[name], casting="no")
        hook = self.profile_hook
        if hook is None:
            for _, step in self._steps:
                step()
        else:
            meta = self._step_meta
            timer = _perf_counter
            for i, (name, step) in enumerate(self._steps):
                t0 = timer()
                step()
                hook(name, timer() - t0, meta[i])
        return self._out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExecutionPlan({len(self._steps)} steps, {self.stats})"


def _check_sdpa(nodes, const, cons, single, i):
    """Match QK^T → scale-mul → [bias-add] → softmax(-1) → @V at matmul
    ``i``. Returns (members, bias_idx, scale_idx, softmax_axis, v_idx)."""
    mm1 = nodes[i]
    if not single(i):
        return None
    j = cons[i][0]
    mul = nodes[j]
    if mul.op != "mul" or not single(j):
        return None
    others = [x for x in mul.inputs if x != i]
    if len(others) != 1 or others[0] not in const:
        return None
    scale_idx = others[0]
    if const[scale_idx].ndim != 0:
        return None
    nxt_idx = cons[j][0]
    nxt = nodes[nxt_idx]
    bias_idx = None
    members = [i, j]
    if nxt.op == "add":
        if not single(nxt_idx):
            return None
        others = [x for x in nxt.inputs if x != j]
        if len(others) != 1:
            return None
        bias_idx = others[0]
        members.append(nxt_idx)
        nxt_idx = cons[nxt_idx][0]
        nxt = nodes[nxt_idx]
    if nxt.op != "softmax" or not single(nxt_idx):
        return None
    axis = nxt.params[0]
    if axis not in (-1, len(nxt.shape) - 1):
        return None
    members.append(nxt_idx)
    mm2_idx = cons[nxt_idx][0]
    mm2 = nodes[mm2_idx]
    if mm2.op != "matmul" or mm2.inputs[0] != nxt_idx:
        return None
    members.append(mm2_idx)
    # Shape/dtype stability across the in-place chain.
    if any(nodes[m].shape != mm1.shape or nodes[m].dtype != mm1.dtype
           for m in members[:-1]):
        return None
    # External operands must be bindable before the anchor step.
    for ext in (mm1.inputs[0], mm1.inputs[1], bias_idx, mm2.inputs[1]):
        if ext is not None and ext >= i and ext not in const \
                and nodes[ext].op != "input":
            return None
    return members, bias_idx, scale_idx, axis, mm2.inputs[1]


def _check_linear(nodes, const, cons, single, i):
    """Match matmul → const-bias add [→ gelu] at matmul ``i``.
    Returns (members, bias_idx, bias_first, fuse_gelu)."""
    mm = nodes[i]
    if not single(i):
        return None
    j = cons[i][0]
    add = nodes[j]
    if add.op != "add" or add.shape != mm.shape or add.dtype != mm.dtype:
        return None
    others = [x for x in add.inputs if x != i]
    if len(others) != 1 or others[0] not in const:
        return None
    bias_idx = others[0]
    members = [i, j]
    fuse_gelu = False
    if single(j):
        k2 = cons[j][0]
        g = nodes[k2]
        if g.op == "gelu" and g.shape == add.shape and g.dtype == add.dtype:
            members.append(k2)
            fuse_gelu = True
    return members, bias_idx, add.inputs[0] == bias_idx, fuse_gelu


def compile_graph(graph: Graph) -> ExecutionPlan:
    """Lower a traced graph into a bound, buffer-planned execution plan."""
    nodes = graph.nodes

    # -- 1. reachability --------------------------------------------------
    live = set()
    stack = [graph.output]
    while stack:
        i = stack.pop()
        if i in live:
            continue
        live.add(i)
        stack.extend(nodes[i].inputs)

    # -- 2. constant folding ----------------------------------------------
    const: Dict[int, np.ndarray] = {}
    for n in nodes:
        if n.idx not in live:
            continue
        if n.op == "const":
            const[n.idx] = n.array
        elif n.op != "input" and all(i in const for i in n.inputs):
            const[n.idx] = K.KERNELS[n.op].fn(
                n.params, *[const[i] for i in n.inputs])

    # -- consumer map over live, unfolded nodes ---------------------------
    cons: Dict[int, List[int]] = {}
    for n in nodes:
        if n.idx in live and n.idx not in const and n.op not in ("input",):
            for i in n.inputs:
                cons.setdefault(i, []).append(n.idx)

    def single(i: int) -> bool:
        return len(cons.get(i, ())) == 1 and i != graph.output

    # -- 3. fusion grouping -----------------------------------------------
    # groups: anchor idx -> ("kind", payload); fused interiors are skipped.
    groups: Dict[int, tuple] = {}
    interior = set()
    for n in nodes:
        i = n.idx
        if i not in live or i in const or i in interior \
                or n.op in ("input", "const"):
            continue
        if n.op == "matmul":
            m = _check_sdpa(nodes, const, cons, single, i)
            if m is not None:
                members, bias_idx, scale_idx, axis, v_idx = m
                groups[i] = ("sdpa", members, bias_idx, scale_idx, axis, v_idx)
                interior.update(members[1:])
                continue
            m = _check_linear(nodes, const, cons, single, i)
            if m is not None:
                members, bias_idx, bias_first, fuse_gelu = m
                groups[i] = ("linear", members, bias_idx, bias_first, fuse_gelu)
                interior.update(members[1:])
                continue
        groups[i] = ("node", [i])

    # -- 4. liveness over groups ------------------------------------------
    def find_root(i: int) -> int:
        while nodes[i].op in VIEW_OPS and i not in const:
            i = nodes[i].inputs[0]
        return i

    uses: Counter = Counter()
    ordered_anchors = sorted(groups)
    ext_roots: Dict[int, set] = {}
    for a in ordered_anchors:
        kind, members = groups[a][0], groups[a][1]
        memberset = set(members)
        roots = set()
        for m in members:
            for i in nodes[m].inputs:
                if i not in memberset:
                    roots.add(find_root(i))
        if kind == "sdpa":
            roots.add(find_root(groups[a][5]))   # v
        ext_roots[a] = roots
        for r in roots:
            uses[r] += 1
    uses[find_root(graph.output)] += 1           # never released

    # -- 5. bind + emit ----------------------------------------------------
    plan = ExecutionPlan(graph.signature)
    pool = _BufferPool()
    bound: Dict[int, np.ndarray] = {}
    ownerbuf: Dict[int, Optional[np.ndarray]] = {}
    fused_linear = fused_sdpa = inplace_ops = 0

    for name, i in graph.inputs.items():
        n = nodes[i]
        buf = np.empty(n.shape, dtype=n.dtype)
        plan._input_bufs[name] = buf
        bound[i] = buf
        ownerbuf[i] = None

    def arr(i: int) -> np.ndarray:
        if i in const:
            return const[i]
        return bound[i]

    def emit_view(n) -> bool:
        """Bind a view node statically; False if it needs a runtime copy."""
        parent = arr(n.inputs[0])
        view = K.KERNELS[n.op].fn(n.params, parent)
        if view.base is not None and np.shares_memory(view, parent):
            bound[n.idx] = view
            ownerbuf[n.idx] = None      # lifetime tracked via find_root
            return True
        return False

    def release_roots(anchor: int, keep: set) -> None:
        for r in ext_roots[anchor]:
            uses[r] -= 1
            buf = ownerbuf.get(r)
            if uses[r] == 0 and buf is not None and id(buf) not in keep:
                pool.release(buf)

    def cost_meta(op, in_arrays, out_shape, dtype):
        """Compile-time FLOP/byte stamp consumed by the profile hook."""
        flops, nbytes = kernel_cost(op, [x.shape for x in in_arrays],
                                    tuple(out_shape),
                                    np.dtype(dtype).itemsize)
        return {"flops": flops, "bytes": nbytes}

    sc = plan.scratch
    for a in ordered_anchors:
        spec = groups[a]
        kind = spec[0]
        n = nodes[a]
        keep: set = set()

        if kind == "sdpa":
            _, members, bias_idx, scale_idx, axis, v_idx = spec
            mm1, mm2 = nodes[members[0]], nodes[members[-1]]
            q, kT = arr(mm1.inputs[0]), arr(mm1.inputs[1])
            v = arr(v_idx)
            scale = const[scale_idx]
            bias = arr(bias_idx) if bias_idx is not None else None
            S = pool.get(mm1.shape, mm1.dtype)
            C = pool.get(mm2.shape, mm2.dtype)

            if bias is None:
                def run(q=q, kT=kT, v=v, scale=scale, S=S, C=C, axis=axis):
                    np.matmul(q, kT, out=S)
                    np.multiply(S, scale, out=S)
                    m = S.max(axis=axis, keepdims=True)
                    np.subtract(S, m, out=S)
                    np.exp(S, out=S)
                    z = S.sum(axis=axis, keepdims=True)
                    np.divide(S, z, out=S)
                    np.matmul(S, v, out=C)
            else:
                def run(q=q, kT=kT, v=v, scale=scale, bias=bias, S=S, C=C,
                        axis=axis):
                    np.matmul(q, kT, out=S)
                    np.multiply(S, scale, out=S)
                    np.add(S, bias, out=S)
                    m = S.max(axis=axis, keepdims=True)
                    np.subtract(S, m, out=S)
                    np.exp(S, out=S)
                    z = S.sum(axis=axis, keepdims=True)
                    np.divide(S, z, out=S)
                    np.matmul(S, v, out=C)

            sdpa_ins = [q, kT, v] + ([bias] if bias is not None else [])
            plan.add_step("sdpa", run,
                          cost_meta("sdpa", sdpa_ins, mm2.shape, mm2.dtype))
            out_idx = members[-1]
            bound[out_idx] = C
            ownerbuf[out_idx] = C
            keep.add(id(C))
            release_roots(a, keep)
            pool.release(S)             # scores die inside the group
            fused_sdpa += 1
            continue

        if kind == "linear":
            _, members, bias_idx, bias_first, fuse_gelu = spec
            mm = nodes[members[0]]
            out_node = nodes[members[-1]]
            x, w = arr(mm.inputs[0]), arr(mm.inputs[1])
            bias = const[bias_idx]
            out = pool.get(out_node.shape, out_node.dtype)

            if fuse_gelu:
                def run(x=x, w=w, bias=bias, out=out, bias_first=bias_first):
                    np.matmul(x, w, out=out)
                    if bias_first:
                        np.add(bias, out, out=out)
                    else:
                        np.add(out, bias, out=out)
                    K._gelu_out((), out, sc, out)
            else:
                def run(x=x, w=w, bias=bias, out=out, bias_first=bias_first):
                    np.matmul(x, w, out=out)
                    if bias_first:
                        np.add(bias, out, out=out)
                    else:
                        np.add(out, bias, out=out)

            lin_op = "linear_gelu" if fuse_gelu else "linear"
            plan.add_step(lin_op, run,
                          cost_meta(lin_op, [x, w, bias],
                                    out_node.shape, out_node.dtype))
            out_idx = members[-1]
            bound[out_idx] = out
            ownerbuf[out_idx] = out
            keep.add(id(out))
            release_roots(a, keep)
            fused_linear += 1
            continue

        # -- single node ---------------------------------------------------
        if n.op in VIEW_OPS and emit_view(n):
            # Pure view: no step; defer liveness to downstream consumers.
            release_roots(a, keep={id(ownerbuf.get(find_root(n.idx)))})
            continue

        kernel = K.KERNELS[n.op]
        ins = [arr(i) for i in n.inputs]

        if n.op in VIEW_OPS:
            # Non-viewable reshape / advanced getitem: runtime copy.
            out = pool.get(n.shape, n.dtype)
            if n.op == "reshape":
                src = ins[0]
                ov = out.reshape(src.shape)

                def run(ov=ov, src=src):
                    np.copyto(ov, src)
            else:
                def run(out=out, kernel=kernel, params=n.params, ins=ins):
                    np.copyto(out, kernel.fn(params, *ins))
            plan.add_step(f"{n.op}_copy", run,
                          cost_meta(f"{n.op}_copy", ins, n.shape, n.dtype))
        else:
            # In-place: reuse a dying, shape/dtype-matched operand buffer.
            out = None
            if n.op in _INPLACE_SAFE and kernel.fn_out is not None:
                for i in n.inputs:
                    r = find_root(i)
                    buf = ownerbuf.get(r)
                    if (buf is not None and uses[r] == 1
                            and bound[i] is buf
                            and buf.shape == n.shape
                            and buf.dtype == n.dtype):
                        out = buf
                        inplace_ops += 1
                        break
            if out is None:
                out = pool.get(n.shape, n.dtype)
            if kernel.fn_out is not None:
                def run(out=out, kernel=kernel, params=n.params, ins=ins):
                    kernel.fn_out(params, out, sc, *ins)
            else:
                def run(out=out, kernel=kernel, params=n.params, ins=ins):
                    np.copyto(out, kernel.fn(params, *ins))
            plan.add_step(n.op, run,
                          cost_meta(n.op, ins, n.shape, n.dtype))

        bound[n.idx] = out
        ownerbuf[n.idx] = out
        keep.add(id(out))
        release_roots(a, keep)

    plan._out = arr(graph.output)
    plan.stats = {
        "steps": len(plan._steps),
        "fused_linear": fused_linear,
        "fused_sdpa": fused_sdpa,
        "inplace": inplace_ops,
        "buffers": pool.allocated,
        "buffer_reuse": pool.reused,
    }
    return plan


class CompiledModel:
    """A model bound to one compiled plan (one input signature).

    Calling it mirrors ``model.forward(tokens, coords, valid)`` but runs
    the plan; the returned logits array is plan-owned (overwritten by the
    next call).
    """

    def __init__(self, model, graph: Graph, plan: ExecutionPlan):
        self.model = model
        self.graph = graph
        self.plan = plan

    def __call__(self, tokens: np.ndarray, coords=None,
                 valid=None) -> np.ndarray:
        feeds = self.model.prepare_inputs(tokens, coords, valid)
        return self.plan.run(feeds)


def compile_model(model, tokens: np.ndarray, coords=None,
                  valid=None) -> CompiledModel:
    """Trace ``model.forward_core`` on example inputs and compile it.

    The model must expose the shape-stable split (``prepare_inputs`` /
    ``forward_core``) — ViTSegmenter, VolumeViTSegmenter, ViTClassifier and
    ViTBackbone do — and should be in ``eval()`` mode (tracing stochastic
    dropout raises). One plan serves every batch with the same input
    signature (shapes + dtypes + presence of coords/valid).
    """
    feeds = model.prepare_inputs(tokens, coords, valid)
    graph = trace(model.forward_core, feeds)
    plan = compile_graph(graph)
    return CompiledModel(model, graph, plan)
