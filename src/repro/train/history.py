"""Training history & convergence bookkeeping (Fig. 4, Table II's
time-to-convergence speedups)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

__all__ = ["TrainingHistory"]


@dataclass
class TrainingHistory:
    """Per-epoch records of one training run."""

    train_loss: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    val_metric: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)
    lr: List[float] = field(default_factory=list)

    def record(self, train_loss: float, val_loss: float, val_metric: float,
               seconds: float, lr: float) -> None:
        self.train_loss.append(float(train_loss))
        self.val_loss.append(float(val_loss))
        self.val_metric.append(float(val_metric))
        self.epoch_seconds.append(float(seconds))
        self.lr.append(float(lr))

    @property
    def epochs(self) -> int:
        return len(self.train_loss)

    @property
    def best_metric(self) -> float:
        if not self.val_metric:
            raise ValueError("no epochs recorded")
        return max(self.val_metric)

    def convergence_epoch(self, fraction: float = 0.98) -> int:
        """First epoch (1-based) whose validation metric reaches ``fraction``
        of the run's best — the paper's time-to-convergence criterion."""
        if not self.val_metric:
            raise ValueError("no epochs recorded")
        target = self.best_metric * fraction
        for i, m in enumerate(self.val_metric):
            if m >= target:
                return i + 1
        return self.epochs  # pragma: no cover - unreachable (best reaches itself)

    def time_to_convergence(self, fraction: float = 0.98) -> float:
        """Wall seconds until the convergence epoch completed."""
        e = self.convergence_epoch(fraction)
        return float(np.sum(self.epoch_seconds[:e]))

    def time_to_target(self, target: float) -> float:
        """Wall seconds until the validation metric first reaches ``target``
        (the paper's same-dice-score clock); total time if never reached."""
        if not self.val_metric:
            raise ValueError("no epochs recorded")
        for i, m in enumerate(self.val_metric):
            if m >= target:
                return float(np.sum(self.epoch_seconds[:i + 1]))
        return float(np.sum(self.epoch_seconds))

    def loss_stability(self, last_k: int = 5) -> float:
        """Std-dev of the last ``last_k`` validation losses (Fig. 4's
        stability comparison: smaller patch sizes converge more stably)."""
        tail = self.val_loss[-last_k:]
        if not tail:
            raise ValueError("no epochs recorded")
        return float(np.std(tail))

    def to_dict(self) -> Dict[str, List[float]]:
        return {
            "train_loss": list(self.train_loss),
            "val_loss": list(self.val_loss),
            "val_metric": list(self.val_metric),
            "epoch_seconds": list(self.epoch_seconds),
            "lr": list(self.lr),
        }
