"""The micro-batching inference front-end.

:class:`Predictor` is the serving counterpart of the training pipeline:
it pulls natural (pre-drop) sequences from a
:class:`~repro.pipeline.engine.PatchPipeline` (LRU-cached, worker-sharded)
or any patcher, and drains them through the shared
:class:`~repro.serve.scheduler.WorkGraphScheduler` — the single
implementation of length bucketing, micro-batch formation, per-signature
plan execution and stitch scatter that the async engine, the fleet
router and the streaming runner ride as well. The Predictor is the
*synchronous drain* adapter: build sequence nodes, drain the graph,
return results in request order.

Bucketing semantics
-------------------
A sequence of natural length ``n`` is zero-padded (``valid=False`` slots)
to the smallest multiple of ``bucket`` ≥ ``n``, capped at the model's
positional-table size; longer sequences are randomly dropped to the cap
with a deterministic per-(seed, length, bucket) RNG. One compiled plan then
serves *every* request landing in the same (batch, length) signature; the
plan cache is bounded by ``max_batch x |length buckets|``, and under steady
traffic almost all requests ride a handful of full-batch plans.

Numerics: with ``compiled=True`` (default) every forward is bit-identical
to the eager ``no_grad`` forward on the same collated batch — the
``compiled=False`` switch exists precisely so tests and benches can assert
that equality end-to-end.
"""

from __future__ import annotations

import warnings
from typing import Hashable, List, Optional, Sequence

import numpy as np

from ..sparse import SparseRuntime, SparsityConfig
from ..train.volumetric import predict_volume_batched
from .scheduler import WorkGraphScheduler, class_map

__all__ = ["Predictor", "predict_image", "class_map"]


class Predictor:
    """Micro-batched (optionally compiled) inference over APF sequences.

    Parameters
    ----------
    model:
        A segmenter exposing the shape-stable split (``prepare_inputs`` /
        ``forward_core``) plus ``patch_size`` / ``out_channels`` —
        :class:`~repro.models.vit.ViTSegmenter` or
        :class:`~repro.models.vit.VolumeViTSegmenter`. Switched to
        ``eval()`` mode on construction.
    pipeline:
        A :class:`~repro.pipeline.engine.PatchPipeline` (preferred: batch
        kernels + LRU cache) or any patcher with ``extract_natural`` /
        ``fit_length``.
    max_batch:
        Micro-batch ceiling per plan execution.
    bucket:
        Length-bucket granularity (padded lengths are multiples of this).
    compiled:
        ``False`` runs the same bucketing/batching through the eager
        tape — the baseline the compiled path is benchmarked and
        bit-compared against.
    sparsity:
        Optional :class:`~repro.sparse.SparsityConfig` enabling the
        token-sparsity fast path (memo replay, background short-circuit,
        token merging — steered by the cost-model plan chooser). ``None``
        (default) leaves the dense path byte-for-byte untouched.
        Decisions and cache traffic surface as ``stats["sparsity"]``.

    Examples
    --------
    >>> pipe = PatchPipeline(patch_size=4, split_value=8.0)
    >>> server = Predictor(model, pipe, max_batch=8)
    >>> probs = server.predict_image(image)          # (K, Z, Z)
    >>> maps = server.predict_batch(images)          # list of (K, Z, Z)
    """

    def __init__(self, model, pipeline, *, max_batch: int = 8,
                 bucket: int = 32, compiled: bool = True, drop_seed: int = 0,
                 sparsity: Optional[SparsityConfig] = None, tracer=None):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if bucket < 1:
            raise ValueError("bucket must be >= 1")
        # Tracing (repro.obs): the scheduler reads these off the predictor,
        # so every front-end's spans share one wiring point. An owning
        # engine overwrites both (tracer push-down + replica track label).
        self.tracer = tracer if (tracer is not None and tracer.enabled) \
            else None
        self.trace_label = "predictor"
        self.model = model.eval()
        self.pipeline = pipeline
        self.max_batch = max_batch
        self.bucket = bucket
        self.compiled = compiled
        self.drop_seed = drop_seed
        self.max_len = model.backbone.embed.max_len
        self.stats = {"images": 0, "batches": 0, "plans": 0,
                      "compile_seconds": 0.0, "padded_tokens": 0,
                      "real_tokens": 0}
        self.scheduler = WorkGraphScheduler(self)
        self.sparsity = None
        if sparsity is not None and sparsity.mode != "off":
            self.sparsity = SparseRuntime(self, sparsity)
            self.stats["sparsity"] = self.sparsity.stats

    @property
    def _plans(self) -> dict:
        """The per-signature compiled-plan cache (owned by the scheduler)."""
        return self.scheduler._plans

    # -- sequence acquisition ---------------------------------------------
    def _naturals(self, images: Sequence[np.ndarray],
                  keys: Optional[Sequence[Hashable]]) -> List:
        if hasattr(self.pipeline, "process"):        # PatchPipeline
            return self.pipeline.process(images, keys)
        return [self.pipeline.extract_natural(np.asarray(im))
                for im in images]

    # -- bucketing (delegated: the scheduler is the single truth) ----------
    def bucket_length(self, n: int) -> int:
        """Smallest bucket multiple >= n, capped at the positional table."""
        return self.scheduler.bucket_length(n)

    def warmup(self, lengths: Optional[Sequence[int]] = None,
               batch_sizes: Optional[Sequence[int]] = None) -> dict:
        """Pre-compile plans for a ladder of (batch, length) signatures.

        Tracing+compiling a plan takes orders of magnitude longer than
        executing it, so without warmup the *first* request landing on
        each signature eats the whole compile. Serving front-ends (the
        :class:`~repro.serve.engine.InferenceEngine`) call this from
        ``start()`` with their configured bucket lengths so steady-state
        latency applies from request one.

        ``lengths`` are padded to the bucket grid and capped at the
        positional table, then compiled for each of ``batch_sizes``
        (default: 1 and ``max_batch`` — the partial-flush and full-flush
        extremes). Signatures already in the plan cache are skipped; the
        dummy inputs are zeros, which exercise the identical kernel graph
        as real traffic. Returns compile accounting.
        """
        if not self.compiled:
            return {"plans": 0, "compiled": 0, "compile_seconds": 0.0}
        if lengths is None:
            lengths = (self.bucket,)
        if batch_sizes is None:
            batch_sizes = (1, self.max_batch)
        if any(n < 1 for n in lengths) or any(b < 1 for b in batch_sizes):
            raise ValueError("lengths and batch_sizes must be >= 1")
        embed = self.model.backbone.embed
        token_dim = embed.proj.in_features
        coord_dim = (embed.coord_proj.in_features
                     if embed.coord_proj is not None else 3)
        compiled = 0
        for length in sorted({self.bucket_length(n) for n in lengths}):
            for b in sorted(set(batch_sizes)):
                tokens = np.zeros((b, length, token_dim))
                if (tokens.shape, (b, length)) in self._plans:
                    continue
                coords = np.zeros((b, length, coord_dim))
                valid = np.ones((b, length), dtype=bool)
                self.scheduler._forward(tokens, coords, valid)
                compiled += 1
        return {"plans": len(self._plans), "compiled": compiled,
                "compile_seconds": self.stats["compile_seconds"]}

    # -- public API --------------------------------------------------------
    def predict_sequences(self, seqs: Sequence) -> List[np.ndarray]:
        """Probability maps for pre-extracted natural sequences, in order.

        A synchronous drain of the work graph: the scheduler forms the
        micro-batches (buckets ascending, FIFO chunks of ``max_batch``)
        and runs them to completion.
        """
        return self.scheduler.execute(seqs)

    def predict_batch(self, images: Sequence[np.ndarray],
                      keys: Optional[Sequence[Hashable]] = None
                      ) -> List[np.ndarray]:
        """Full-resolution probability maps for a batch of images/volumes."""
        return self.predict_sequences(self._naturals(images, keys))

    def predict_image(self, image: np.ndarray,
                      key: Optional[Hashable] = None) -> np.ndarray:
        """Single image/volume -> (K, Z, Z) (or (Z, Z, Z)) probabilities.

        Mirrors ``model.predict_mask`` / ``model.predict_volume_probs``
        through the serving stack. The single implementation behind both
        this method and the deprecated module-level :func:`predict_image`.
        """
        return self.predict_batch([image],
                                  None if key is None else [key])[0]

    def predict_class_slices(self, slices: Sequence[np.ndarray]
                             ) -> List[np.ndarray]:
        """Per-slice class maps (argmax over channels; threshold at 0.5 for
        single-channel binary heads) — the callable
        :func:`~repro.train.volumetric.predict_volume_batched` expects."""
        return [class_map(probs) for probs in self.predict_batch(list(slices))]

    def predict_volume(self, volume: np.ndarray,
                       batch_size: Optional[int] = None) -> np.ndarray:
        """Slice a (S, Z, Z) volume through the 2-D model and restack —
        the paper's BTCV protocol, micro-batched end to end."""
        return predict_volume_batched(self.predict_class_slices, volume,
                                      batch_size or self.max_batch)


def predict_image(model, pipeline, image: np.ndarray,
                  key: Optional[Hashable] = None,
                  **predictor_kwargs) -> np.ndarray:
    """Deprecated one-shot wrapper — use :meth:`Predictor.predict_image`.

    Historically this free function and the method drifted (no ``key``
    support here, and a fresh Predictor per call silently discarded the
    plan and pipeline caches). It is now a pure shim over the one
    implementation: construct a :class:`Predictor` and call its
    :meth:`~Predictor.predict_image`, which amortizes compiled plans and
    the sequence cache across calls.
    """
    warnings.warn(
        "repro.serve.predict_image() is deprecated; construct a Predictor "
        "once and call predictor.predict_image(image, key=...) so compiled "
        "plans and the pipeline cache amortize across calls",
        DeprecationWarning, stacklevel=2)
    return Predictor(model, pipeline, **predictor_kwargs).predict_image(
        image, key=key)
