"""``repro.serve`` — the micro-batching inference front-end.

:class:`Predictor` turns (model + :class:`~repro.pipeline.engine.
PatchPipeline`) into a serving stack: cached APF preprocessing, sequence-
length bucketing, micro-batched compiled execution
(:mod:`repro.runtime`), and vectorized map stitching (:mod:`.stitch`).
"""

from .predictor import Predictor, predict_image
from .stitch import stitch_image, stitch_volume

__all__ = ["Predictor", "predict_image", "stitch_image", "stitch_volume"]
