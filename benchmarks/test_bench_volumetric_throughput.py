"""Volumetric pipeline throughput benchmark + CI regression gate.

Measures octree APF preprocessing throughput (volumes/sec) on 64³ synthetic
CT volumes at batch 8 under three configurations:

* ``single``   — the reference per-volume loop, re-patching every epoch;
* ``batched``  — :class:`BatchedVolumetricPatcher.extract_batch`, no cache
                 (exact-replay detail kernels + level-synchronous batched
                 octree + vectorized cube gather);
* ``pipeline`` — :class:`PatchPipeline` over a :class:`VolumeAPFConfig`
                 with its LRU cache — Algorithm 1's amortization: the octree
                 cascade runs once per volume, later epochs pay a lookup
                 plus the cheap drop stage.

The workload is a short training run (EPOCHS passes over the same 8
volumes). Results go to ``BENCH_volumetric.json`` (atomic write); the
committed ``BENCH_volumetric_baseline.json`` gates regressions the same way
the 2-D pipeline bench does: the run fails if the pipeline no longer clears
2x the per-volume loop at batch 8 (the PR's acceptance floor), if the
batched engine falls behind the loop it replaces, or on a >2x drop against
the baseline.
"""

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data import generate_ct_volume
from repro.patching import VolumeAPFConfig, VolumetricAdaptivePatcher
from repro.perf import write_json_atomic
from repro.pipeline import BatchedVolumetricPatcher, PatchPipeline

BATCH = 8
RESOLUTION = 64
EPOCHS = 3
ROUNDS = 3          # median-of-N: noisy/shared hosts swing single runs 3-5x
CONFIG = dict(patch_size=4, split_value=8.0)

HERE = Path(__file__).resolve().parent
RESULT_PATH = HERE / "BENCH_volumetric.json"
BASELINE_PATH = HERE / "BENCH_volumetric_baseline.json"


def _volumes():
    return [generate_ct_volume(RESOLUTION, RESOLUTION, seed=s).volume
            for s in range(BATCH)]


def _vps(n_volumes, seconds):
    return n_volumes / seconds if seconds > 0 else float("inf")


def _median_seconds(workload):
    """Median wall time of ROUNDS runs (each run sets up fresh state)."""
    times = []
    for _ in range(ROUNDS):
        run = workload()
        t0 = time.perf_counter()
        run()
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


@pytest.mark.bench
def test_volumetric_throughput_and_regression_gate():
    vols = _volumes()
    total = BATCH * EPOCHS

    # -- single-volume reference loop, re-patched per epoch ---------------
    def single_workload():
        ref = VolumetricAdaptivePatcher(VolumeAPFConfig(**CONFIG))

        def run():
            for _ in range(EPOCHS):
                for v in vols:
                    ref.extract_natural(v)
        return run

    single_s = _median_seconds(single_workload)

    # -- batched engine, no cache ----------------------------------------
    def batched_workload():
        bp = BatchedVolumetricPatcher(VolumeAPFConfig(**CONFIG))

        def run():
            for _ in range(EPOCHS):
                bp.extract_natural_batch(vols)
        return run

    batched_s = _median_seconds(batched_workload)

    # -- full pipeline: batched + LRU cache across epochs ----------------
    # Fresh pipeline per round so every round pays the cold first epoch.
    pipe = None

    def pipeline_workload():
        nonlocal pipe
        pipe = PatchPipeline(VolumeAPFConfig(**CONFIG),
                             cache_items=2 * BATCH)

        def run():
            for _ in range(EPOCHS):
                pipe.process(vols, keys=list(range(BATCH)))
        return run

    pipeline_s = _median_seconds(pipeline_workload)
    ref = VolumetricAdaptivePatcher(VolumeAPFConfig(**CONFIG))
    bp = BatchedVolumetricPatcher(VolumeAPFConfig(**CONFIG))

    # -- correctness guard: the fast path must stay bit-identical --------
    a = ref.extract_natural(vols[0])
    b = bp.extract_natural_batch([vols[0]])[0]
    np.testing.assert_array_equal(a.patches, b.patches)
    np.testing.assert_array_equal(a.zs, b.zs)
    np.testing.assert_array_equal(a.sizes, b.sizes)

    result = {
        "workload": {"batch": BATCH, "resolution": RESOLUTION,
                     "epochs": EPOCHS, **CONFIG},
        "environment": {"cpus": os.cpu_count() or 1,
                        "machine": platform.machine()},
        "single_vps": round(_vps(total, single_s), 3),
        "batched_vps": round(_vps(total, batched_s), 3),
        "pipeline_vps": round(_vps(total, pipeline_s), 3),
        "speedup_batched_cold": round(single_s / batched_s, 3),
        "speedup_pipeline": round(single_s / pipeline_s, 3),
        "cache": pipe.stats,
    }
    result["cache"] = {k: (round(v, 4) if isinstance(v, float) else v)
                       for k, v in result["cache"].items()}
    write_json_atomic(RESULT_PATH, result)
    print("\n" + json.dumps(result, indent=2))

    # -- acceptance: pipeline >= 2x the per-volume loop at batch 8 -------
    assert result["speedup_pipeline"] >= 2.0, (
        f"pipeline speedup {result['speedup_pipeline']}x fell below the 2x "
        f"floor (single {result['single_vps']} vps, "
        f"pipeline {result['pipeline_vps']} vps)")
    # The batched engine must never be slower than the loop it replaces.
    assert result["speedup_batched_cold"] >= 1.0

    # -- regression gate vs committed baseline (>2x slowdown fails) ------
    # Absolute volumes/sec only compare across identical hardware; on a host
    # unlike the one that wrote the baseline, gate on the hardware-portable
    # speedup ratios instead so slower CI runners don't fail spuriously.
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        same_host = baseline.get("environment") == result["environment"]
        keys = (("single_vps", "batched_vps", "pipeline_vps") if same_host
                else ("speedup_batched_cold", "speedup_pipeline"))
        for key in keys:
            floor = baseline[key] / 2.0
            assert result[key] >= floor, (
                f"{key} regressed >2x: {result[key]} vs baseline "
                f"{baseline[key]} (floor {floor})")
