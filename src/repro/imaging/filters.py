"""Separable Gaussian filtering and Sobel gradients.

The paper applies ``GaussianBlur(x; k)`` with kernel sizes
``[3, 3, 5, 7, 9, 11, 13]`` for resolutions ``[512 ... 65536]`` and
``sigma = 0`` — the OpenCV convention where sigma is derived from the kernel
size as ``0.3*((k-1)*0.5 - 1) + 0.8``. We follow that convention so the
hyper-parameters in the paper's §III-A transfer directly.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = ["gaussian_kernel1d", "gaussian_blur", "sobel_gradients",
           "sigma_from_ksize", "KSIZE_FOR_RESOLUTION"]

#: Paper §III-A: Gaussian kernel size per image resolution.
KSIZE_FOR_RESOLUTION = {
    512: 3, 1024: 3, 4096: 5, 8192: 7, 16384: 9, 32768: 11, 65536: 13,
}


def sigma_from_ksize(ksize: int) -> float:
    """OpenCV's automatic sigma for ``sigma = 0``: ``0.3*((k-1)*0.5-1)+0.8``."""
    if ksize < 1 or ksize % 2 == 0:
        raise ValueError(f"kernel size must be odd and positive, got {ksize}")
    return 0.3 * ((ksize - 1) * 0.5 - 1) + 0.8


def gaussian_kernel1d(ksize: int, sigma: float = 0.0) -> np.ndarray:
    """Normalized 1-D Gaussian taps of length ``ksize`` (sigma=0 → OpenCV rule)."""
    if sigma <= 0:
        sigma = sigma_from_ksize(ksize)
    half = (ksize - 1) / 2.0
    x = np.arange(ksize) - half
    k = np.exp(-(x * x) / (2.0 * sigma * sigma))
    return k / k.sum()


def gaussian_blur(img: np.ndarray, ksize: int = 3, sigma: float = 0.0) -> np.ndarray:
    """Separable Gaussian blur with reflect padding.

    ``img`` may be (H, W) or (H, W, C); output has the same shape and dtype
    float64/float32 preserved (integer inputs are promoted to float64).
    """
    k = gaussian_kernel1d(ksize, sigma)
    out = np.asarray(img, dtype=np.result_type(img.dtype, np.float32))
    if out.ndim == 2:
        out = ndimage.correlate1d(out, k, axis=0, mode="reflect")
        out = ndimage.correlate1d(out, k, axis=1, mode="reflect")
        return out
    if out.ndim == 3:
        out = ndimage.correlate1d(out, k, axis=0, mode="reflect")
        out = ndimage.correlate1d(out, k, axis=1, mode="reflect")
        return out
    raise ValueError(f"expected 2-D or 3-D image, got shape {img.shape}")


_SOBEL_X = np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]], dtype=np.float64)
_SOBEL_Y = _SOBEL_X.T


def sobel_gradients(img: np.ndarray):
    """Return ``(gx, gy, magnitude, angle)`` from 3x3 Sobel operators.

    ``angle`` is in radians in ``(-pi, pi]``; used by Canny's non-maximum
    suppression.
    """
    f = np.asarray(img, dtype=np.float64)
    if f.ndim != 2:
        raise ValueError("sobel_gradients expects a grayscale (2-D) image")
    gx = ndimage.correlate(f, _SOBEL_X, mode="reflect")
    gy = ndimage.correlate(f, _SOBEL_Y, mode="reflect")
    mag = np.hypot(gx, gy)
    ang = np.arctan2(gy, gx)
    return gx, gy, mag, ang
