"""Volumetric adaptive patching: APF for 3-D volumes via an octree.

The natural extension of the paper (its carrier UNETR is natively 3-D): the
same blur→detail→tree→Morton→downscale pipeline, with cubes instead of
squares. Detail is gradient-magnitude density (a 3-D Canny is ill-defined;
gradient energy is the standard surrogate). Tokens are ``Pm^3`` cubes
flattened to ``C*Pm^3`` vectors — consumable by the same ViT backbone.

Like the 2-D :class:`~repro.patching.adaptive.AdaptivePatcher`, the patcher
supports a fixed sequence length (``target_length``) via random drop /
zero-pad, so volumes batch into the same ``(B, L, Pm^3)`` collated tensors
the pipeline produces for images.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np
from scipy import ndimage

from ..quadtree.octree import OctreeLeaves, build_octree

__all__ = ["VolumeAPFConfig", "VolumetricAdaptivePatcher", "VolumeSequence"]


@dataclass
class VolumeSequence:
    """Model-ready sequence of same-size cubic patches + geometry.

    Mirrors :class:`~repro.patching.sequence.PatchSequence` for volumes:
    padded slots (``valid == False``) carry zero patches and ``sizes == 0``.
    """

    patches: np.ndarray            #: (L, Pm, Pm, Pm)
    zs: np.ndarray
    ys: np.ndarray
    xs: np.ndarray
    sizes: np.ndarray
    volume_size: int
    patch_size: int
    valid: np.ndarray = field(default=None)  # type: ignore[assignment]
    n_real: int = -1
    n_dropped: int = 0
    #: Optional (L,) per-token detail score — the octree's region detail
    #: mass that decided not to split the cube (zero = provably flat).
    details: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.valid is None:
            self.valid = np.ones(len(self.patches), dtype=bool)
        if self.n_real < 0:
            self.n_real = len(self.patches)
        lengths = {len(self.patches), len(self.zs), len(self.ys),
                   len(self.xs), len(self.sizes), len(self.valid)}
        if self.details is not None:
            lengths.add(len(self.details))
        if len(lengths) != 1:
            raise ValueError(f"inconsistent sequence field lengths: {lengths}")

    def __len__(self) -> int:
        return len(self.patches)

    def tokens(self) -> np.ndarray:
        return self.patches.reshape(len(self), -1)

    def coords(self) -> np.ndarray:
        """(L, 4): normalized center (z, y, x) + log2 size; zeros at padding."""
        n = float(self.volume_size)
        out = np.zeros((len(self), 4), dtype=np.float64)
        v = self.valid
        out[v, 0] = (self.zs[v] + self.sizes[v] / 2) / n
        out[v, 1] = (self.ys[v] + self.sizes[v] / 2) / n
        out[v, 2] = (self.xs[v] + self.sizes[v] / 2) / n
        out[v, 3] = (np.log2(np.maximum(self.sizes[v], 1))
                     / max(np.log2(n), 1.0))
        return out

    def coverage_fraction(self) -> float:
        """Fraction of volume covered by retained (non-dropped) tokens."""
        vol = float((self.sizes[self.valid].astype(np.int64) ** 3).sum())
        return vol / float(self.volume_size) ** 3

    def scatter_to_volume(self, token_values: np.ndarray,
                          fill: float = 0.0) -> np.ndarray:
        """Broadcast per-token scalars (L,) or cubes (L, Pm, Pm, Pm) back
        onto the (Z, Z, Z) volume. Padded/dropped regions keep ``fill``."""
        tv = np.asarray(token_values)
        n = self.volume_size
        out = np.full((n, n, n), fill, dtype=np.float64)
        pm = self.patch_size
        for i in np.flatnonzero(self.valid):
            s = int(self.sizes[i])
            z, y, x = int(self.zs[i]), int(self.ys[i]), int(self.xs[i])
            if tv.ndim == 1:
                out[z:z + s, y:y + s, x:x + s] = tv[i]
            else:
                f = s // pm
                cube = tv[i]
                if f > 1:
                    cube = np.repeat(np.repeat(np.repeat(cube, f, 0), f, 1), f, 2)
                out[z:z + s, y:y + s, x:x + s] = cube
        return out


@dataclass
class VolumeAPFConfig:
    """Hyper-parameters of the volumetric patcher."""

    patch_size: int = 4
    split_value: float = 8.0
    max_depth: Optional[int] = None
    #: Gaussian pre-smoothing sigma for the gradient detail map.
    blur_sigma: float = 1.0
    #: Quantile of gradient magnitude counted as "detail" (edge surrogate).
    detail_quantile: float = 0.97
    #: Fixed sequence length L. None keeps the natural length (no pad/drop).
    target_length: Optional[int] = None
    #: Over-length policy: "random" drops uniformly; "coarsest-first" drops
    #: the largest (least detailed) cubes first.
    drop_strategy: str = "random"
    #: RNG seed for the random drop/pad step.
    seed: int = 0

    def __post_init__(self) -> None:
        p = self.patch_size
        if p < 1 or (p & (p - 1)):
            raise ValueError(f"patch_size must be a positive power of two, got {p}")
        if not 0.0 < self.detail_quantile < 1.0:
            raise ValueError("detail_quantile must be in (0, 1)")
        if self.drop_strategy not in ("random", "coarsest-first"):
            raise ValueError(f"unknown drop strategy {self.drop_strategy!r}")


class VolumetricAdaptivePatcher:
    """Octree-based APF for (Z, Z, Z) volumes."""

    def __init__(self, config: Optional[VolumeAPFConfig] = None, **overrides):
        if config is None:
            config = VolumeAPFConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config object or keyword overrides")
        self.config = config
        self._rng = np.random.default_rng(config.seed)

    def detail_map(self, volume: np.ndarray) -> np.ndarray:
        """Gradient-magnitude detail mask (3-D edge surrogate)."""
        v = np.asarray(volume, dtype=np.float64)
        if v.ndim != 3:
            raise ValueError(f"expected a 3-D volume, got shape {v.shape}")
        smooth = ndimage.gaussian_filter(v, self.config.blur_sigma)
        gz, gy, gx = np.gradient(smooth)
        mag = np.sqrt(gz ** 2 + gy ** 2 + gx ** 2)
        thr = np.quantile(mag, self.config.detail_quantile)
        return (mag > thr).astype(np.float64)

    def build_tree(self, volume: np.ndarray) -> OctreeLeaves:
        detail = self.detail_map(volume)
        n = detail.shape[0]
        cfg = self.config
        depth = (cfg.max_depth if cfg.max_depth is not None
                 else int(np.log2(n // cfg.patch_size)))
        return build_octree(detail, cfg.split_value, depth,
                            min_size=cfg.patch_size)

    def __call__(self, volume: np.ndarray) -> VolumeSequence:
        return self.extract(volume)

    def extract(self, volume: np.ndarray,
                leaves: Optional[OctreeLeaves] = None,
                config: Optional[VolumeAPFConfig] = None) -> VolumeSequence:
        """Full pipeline: volume → model-ready :class:`VolumeSequence`.

        ``leaves`` may be supplied to reuse a tree (e.g. to patchify a label
        volume with the same partition). ``config`` overrides ``self.config``
        for this call only — the shared config is never mutated, so
        concurrent callers are safe.
        """
        v = np.asarray(volume, dtype=np.float64)
        if leaves is None:
            leaves = self.build_tree(v)
        cfg = config if config is not None else self.config
        leaves = leaves.sorted_by_morton()
        pm = cfg.patch_size
        n = len(leaves)
        patches = np.zeros((n, pm, pm, pm), dtype=np.float64)
        for s in np.unique(leaves.sizes):
            s = int(s)
            idx = np.flatnonzero(leaves.sizes == s)
            for i in idx:
                z, y, x = (int(leaves.zs[i]), int(leaves.ys[i]),
                           int(leaves.xs[i]))
                cube = v[z:z + s, y:y + s, x:x + s]
                if s > pm:
                    f = s // pm
                    cube = cube.reshape(pm, f, pm, f, pm, f).mean(axis=(1, 3, 5))
                patches[i] = cube
        seq = VolumeSequence(patches, leaves.zs.copy(), leaves.ys.copy(),
                             leaves.xs.copy(), leaves.sizes.copy(),
                             v.shape[0], pm,
                             details=None if leaves.details is None
                             else leaves.details.copy())
        if cfg.target_length is not None:
            seq = self.fit_length(seq, cfg.target_length)
        return seq

    def extract_natural(self, volume: np.ndarray) -> VolumeSequence:
        """Full pipeline *without* the pad/drop step (inference path)."""
        cfg = self.config
        if cfg.target_length is None:
            return self.extract(volume)
        return self.extract(volume, config=replace(cfg, target_length=None))

    def fit_length(self, seq: VolumeSequence, length: int,
                   rng: Optional[np.random.Generator] = None) -> VolumeSequence:
        """Randomly drop (too long) or zero-pad (too short) to ``length``.

        Mirrors :meth:`AdaptivePatcher.fit_length`: ``rng`` overrides the
        patcher's own stream so pipeline callers get per-volume generators
        independent of worker count.
        """
        rng = rng if rng is not None else self._rng
        n = len(seq)
        if n == length:
            return seq
        if n > length:
            if self.config.drop_strategy == "coarsest-first":
                jitter = rng.random(n)
                priority = np.lexsort((jitter, -seq.sizes))  # big cubes first
                keep = np.sort(priority[n - length:])
            else:
                keep = np.sort(rng.choice(n, size=length, replace=False))
            return VolumeSequence(
                patches=seq.patches[keep], zs=seq.zs[keep], ys=seq.ys[keep],
                xs=seq.xs[keep], sizes=seq.sizes[keep],
                volume_size=seq.volume_size, patch_size=seq.patch_size,
                valid=seq.valid[keep], n_real=seq.n_real,
                n_dropped=n - length,
                details=None if seq.details is None else seq.details[keep],
            )
        pad = length - n
        pm = seq.patch_size
        return VolumeSequence(
            patches=np.concatenate([seq.patches, np.zeros((pad, pm, pm, pm))]),
            zs=np.concatenate([seq.zs, np.zeros(pad, dtype=np.int64)]),
            ys=np.concatenate([seq.ys, np.zeros(pad, dtype=np.int64)]),
            xs=np.concatenate([seq.xs, np.zeros(pad, dtype=np.int64)]),
            sizes=np.concatenate([seq.sizes, np.zeros(pad, dtype=np.int64)]),
            volume_size=seq.volume_size, patch_size=seq.patch_size,
            valid=np.concatenate([seq.valid, np.zeros(pad, dtype=bool)]),
            n_real=seq.n_real, n_dropped=seq.n_dropped,
            details=None if seq.details is None
            else np.concatenate([seq.details, np.zeros(pad)]),
        )

    def patchify_labels(self, mask: np.ndarray, seq: VolumeSequence) -> np.ndarray:
        """Project a full-resolution label volume onto the token layout.

        Returns (L, 1, Pm, Pm, Pm) soft targets: each cube's mask region is
        area-downscaled to Pm, aligning supervision with the inputs. Padded
        slots are zeros.
        """
        m = np.asarray(mask, dtype=np.float64)
        if m.ndim != 3:
            raise ValueError(f"expected a 3-D mask, got shape {m.shape}")
        pm = seq.patch_size
        out = np.zeros((len(seq), 1, pm, pm, pm), dtype=np.float64)
        for i in np.flatnonzero(seq.valid):
            s = int(seq.sizes[i])
            z, y, x = int(seq.zs[i]), int(seq.ys[i]), int(seq.xs[i])
            region = m[z:z + s, y:y + s, x:x + s]
            if s > pm:
                f = s // pm
                region = region.reshape(pm, f, pm, f, pm, f).mean(axis=(1, 3, 5))
            out[i, 0] = region
        return out
