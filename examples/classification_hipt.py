#!/usr/bin/env python
"""Whole-slide classification: APF-ViT vs hierarchical HIPT (paper Table V).

Six synthetic organ classes whose signal lives in fine lesion morphology
(speckle scale + stripe orientation). A ViT restricted to huge projected
patches loses that detail; APF keeps small patches exactly where the detail
is; HIPT throws a two-level model at the problem.

Run:  python examples/classification_hipt.py [--epochs 30]
"""

import argparse

import numpy as np

from repro import nn
from repro.data import NUM_ORGAN_CLASSES, generate_wsi
from repro.models import HIPTLite, ViTClassifier
from repro.patching import AdaptivePatcher, UniformPatcher
from repro.train import (ImageClassificationTask, SequenceClassificationTask,
                         Trainer)


def balanced(z: int, per_class: int, seed: int):
    return [generate_wsi(z, seed=seed + i * 131 + o, organ=o)
            for o in range(NUM_ORGAN_CLASSES) for i in range(per_class)]


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--epochs", type=int, default=30)
    ap.add_argument("--per-class", type=int, default=8)
    args = ap.parse_args()

    z = 64
    train = balanced(z, args.per_class, seed=0)
    test = balanced(z, 3, seed=7919)
    rng = lambda: np.random.default_rng(1)

    contenders = {
        "ViT (huge patches)": SequenceClassificationTask(
            ViTClassifier(patch_size=4, channels=3, dim=32, depth=2, heads=2,
                          max_len=16, num_classes=6, rng=rng()),
            UniformPatcher(16, project_to=4), channels=3),
        "HIPT (hierarchical)": ImageClassificationTask(
            HIPTLite(image_size=z, channels=3, region_size=16, patch_size=4,
                     dim=32, depth1=1, depth2=1, heads=2, num_classes=6,
                     rng=rng()), channels=3),
        "APF-ViT (small patches)": SequenceClassificationTask(
            ViTClassifier(patch_size=4, channels=3, dim=32, depth=2, heads=2,
                          max_len=160, num_classes=6, rng=rng()),
            AdaptivePatcher(patch_size=4, split_value=2.0, target_length=160),
            channels=3),
    }
    for name, task in contenders.items():
        trainer = Trainer(task, nn.AdamW(task.parameters(), lr=1e-2,
                                         weight_decay=0.05), batch_size=6)
        trainer.fit(train, test, epochs=args.epochs)
        print(f"{name:<26s} train {task.evaluate(train):5.1f}%  "
              f"test {task.evaluate(test):5.1f}%")
    print(f"(chance = {100 / 6:.1f}%)")


if __name__ == "__main__":
    main()
