"""Tests for Morton z-order codes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quadtree import morton_decode, morton_encode, morton_sort_order


class TestMortonCodes:
    def test_known_small_values(self):
        # code interleaves y (odd bits) and x (even bits):
        # (y,x)=(0,0)->0, (0,1)->1, (1,0)->2, (1,1)->3 — the z pattern.
        codes = morton_encode([0, 0, 1, 1], [0, 1, 0, 1])
        np.testing.assert_array_equal(codes, [0, 1, 2, 3])

    def test_second_level_block(self):
        # The 2x2 super-block at (0,2) starts after the first block: (0,2)->4
        assert morton_encode(0, 2)[0] == 4
        assert morton_encode(2, 0)[0] == 8
        assert morton_encode(2, 2)[0] == 12

    def test_roundtrip_random(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2 ** 20, size=1000)
        x = rng.integers(0, 2 ** 20, size=1000)
        yd, xd = morton_decode(morton_encode(y, x))
        np.testing.assert_array_equal(yd, y)
        np.testing.assert_array_equal(xd, x)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            morton_encode(2 ** 25, 0)

    def test_sort_order_is_z_traversal(self):
        # Full 4x4 grid in row-major order; z-order visits quadrant-by-quadrant.
        ys, xs = np.mgrid[0:4, 0:4]
        order = morton_sort_order(ys.ravel(), xs.ravel())
        pts = list(zip(ys.ravel()[order], xs.ravel()[order]))
        assert pts[:4] == [(0, 0), (0, 1), (1, 0), (1, 1)]  # NW quadrant first
        assert pts[4:8] == [(0, 2), (0, 3), (1, 2), (1, 3)]  # NE quadrant second

    @given(st.lists(st.tuples(st.integers(0, 2 ** 16 - 1), st.integers(0, 2 ** 16 - 1)),
                    min_size=1, max_size=50, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_property_codes_unique_for_distinct_points(self, pts):
        ys = np.array([p[0] for p in pts])
        xs = np.array([p[1] for p in pts])
        codes = morton_encode(ys, xs)
        assert len(np.unique(codes)) == len(pts)

    @given(st.integers(0, 2 ** 20 - 1), st.integers(0, 2 ** 20 - 1))
    @settings(max_examples=100, deadline=None)
    def test_property_roundtrip(self, y, x):
        yd, xd = morton_decode(morton_encode(y, x))
        assert yd[0] == y and xd[0] == x

    def test_locality_better_than_rowmajor(self):
        # Mean euclidean distance of successive points along the curve should
        # beat row-major scan order for a 16x16 grid (the property the paper
        # uses Morton order *for*).
        n = 16
        ys, xs = np.mgrid[0:n, 0:n]
        ys, xs = ys.ravel(), xs.ravel()
        z = morton_sort_order(ys, xs)
        pz = np.stack([ys[z], xs[z]], 1).astype(float)
        zdist = np.linalg.norm(np.diff(pz, axis=0), axis=1).mean()
        prm = np.stack([ys, xs], 1).astype(float)
        rdist = np.linalg.norm(np.diff(prm, axis=0), axis=1).mean()
        assert zdist <= rdist
