"""Tests for content digests and the bounded sparsity caches."""

import numpy as np
import pytest

from repro.patching import AdaptivePatcher
from repro.sparse import (BackgroundTable, SequenceMemo, quantize_tokens,
                          sequence_digest, token_digests)


def corner_image(z=64, seed=0):
    """Flat background with a noisy detail corner — the sparsity workload."""
    img = np.full((z, z), 0.25)
    img[:8, :8] = np.random.default_rng(seed).random((8, 8))
    return img


class TestQuantize:
    def test_zero_levels_returns_exact_floats(self):
        t = np.random.default_rng(0).random((5, 4))
        out = quantize_tokens(t, 0)
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, t)

    def test_grid_collapses_near_identical_values(self):
        t = np.array([[0.5000], [0.5001], [0.9]])
        q = quantize_tokens(t, 256)
        assert q.dtype == np.int32
        assert q[0, 0] == q[1, 0]
        assert q[0, 0] != q[2, 0]


class TestTokenDigests:
    def test_equal_rows_equal_digests(self):
        t = np.array([[0.1, 0.2], [0.1, 0.2], [0.3, 0.2]])
        d = token_digests(t, 256)
        assert d.shape == (3,)
        assert d[0] == d[1]
        assert d[0] != d[2]

    def test_quantization_widens_equality(self):
        t = np.array([[0.5000], [0.5001]])
        assert token_digests(t, 16)[0] == token_digests(t, 16)[1]
        assert token_digests(t, 0)[0] != token_digests(t, 0)[1]


class TestSequenceDigest:
    def _seq(self, seed=0):
        return AdaptivePatcher(patch_size=4, split_value=8.0)(
            corner_image(seed=seed))

    def test_deterministic(self):
        assert sequence_digest(self._seq()) == sequence_digest(self._seq())

    def test_content_sensitive(self):
        assert sequence_digest(self._seq(0)) != sequence_digest(self._seq(1))

    def test_single_bit_flip_changes_digest(self):
        seq = self._seq()
        base = sequence_digest(seq)
        seq.patches[0, 0, 0, 0] += 1e-12
        assert sequence_digest(seq) != base


class TestLRUCaches:
    def test_hit_miss_accounting(self):
        memo = SequenceMemo(4)
        assert memo.get("a") is None
        memo.put("a", np.ones(3))
        np.testing.assert_array_equal(memo.get("a"), 1.0)
        assert (memo.hits, memo.misses) == (1, 1)

    def test_capacity_evicts_least_recent(self):
        memo = SequenceMemo(2)
        memo.put("a", np.zeros(1))
        memo.put("b", np.zeros(1))
        memo.get("a")                      # refresh a — b is now oldest
        memo.put("c", np.zeros(1))
        assert memo.get("b") is None
        assert memo.get("a") is not None
        assert len(memo) == 2

    def test_defensive_copies_both_ways(self):
        memo = SequenceMemo(2)
        src = np.ones(3)
        memo.put("k", src)
        src[:] = 9.0                       # caller mutation after put
        out = memo.get("k")
        np.testing.assert_array_equal(out, 1.0)
        out[:] = 7.0                       # caller mutation of the result
        np.testing.assert_array_equal(memo.get("k"), 1.0)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SequenceMemo(0)

    def test_background_key_separates_geometry(self):
        d = token_digests(np.array([[0.5, 0.5]]), 256)[0]
        assert BackgroundTable.key(d, 4, 64) != BackgroundTable.key(d, 8, 64)
        assert BackgroundTable.key(d, 4, 64) != BackgroundTable.key(d, 4, 128)
        assert BackgroundTable.key(d, 4, 64) == BackgroundTable.key(d, 4, 64)
