"""Tests for the fair queue: lanes, flush policy, admission control."""

import pytest

from repro.serve import EngineOverloaded, FairQueue, Request


def req(bucket=32, lane="interactive", t=0.0):
    return Request(seq=None, bucket=bucket, lane=lane, submit_t=t)


class TestAdmission:
    def test_bounded_depth_raises_with_retry_hint(self):
        q = FairQueue({"interactive": 1.0}, max_depth=2)
        q.push(req(t=0.0))
        q.push(req(t=0.1))
        with pytest.raises(EngineOverloaded) as exc:
            q.push(req(t=0.2), retry_after=0.5)
        assert exc.value.retry_after == 0.5
        assert len(q) == 2

    def test_push_all_is_atomic(self):
        q = FairQueue({"interactive": 1.0}, max_depth=3)
        q.push(req())
        with pytest.raises(EngineOverloaded):
            q.push_all([req(), req(), req()])
        assert len(q) == 1          # nothing from the failed group entered
        q.push_all([req(), req()])
        assert len(q) == 3
        assert q.capacity_left == 0

    def test_unknown_lane_and_validation(self):
        q = FairQueue({"interactive": 1.0})
        with pytest.raises(ValueError):
            q.push(req(lane="vip"))
        with pytest.raises(ValueError):
            FairQueue({})
        with pytest.raises(ValueError):
            FairQueue({"a": 0.0})
        with pytest.raises(ValueError):
            FairQueue({"a": 1.0}, max_depth=0)


class TestFlushPolicy:
    def test_full_bucket_flushes_immediately_fifo(self):
        q = FairQueue({"interactive": 1.0})
        reqs = [req(bucket=32, t=0.01 * i) for i in range(5)]
        for r in reqs:
            q.push(r)
        assert q.next_flush_at(0.05, max_batch=4, deadline=1.0) == 0.05
        batch = q.collect(0.05, max_batch=4, deadline=1.0)
        assert batch == reqs[:4]            # strict FIFO within one lane
        # remainder is below max_batch and under deadline: nothing due
        assert q.collect(0.05, max_batch=4, deadline=1.0) is None
        assert len(q) == 1

    def test_deadline_flushes_partial_batch(self):
        q = FairQueue({"interactive": 1.0})
        q.push(req(bucket=32, t=1.0))
        q.push(req(bucket=64, t=1.5))
        assert q.next_flush_at(1.2, 8, deadline=0.5) == pytest.approx(1.5)
        assert q.collect(1.4, 8, deadline=0.5) is None
        batch = q.collect(1.6, 8, deadline=0.5)     # oldest hit its deadline
        assert len(batch) == 1 and batch[0].bucket == 32
        # next-oldest now drives the flush clock
        assert q.next_flush_at(2.0, 8, deadline=0.5) == pytest.approx(2.0)

    def test_batches_never_mix_buckets(self):
        q = FairQueue({"interactive": 1.0})
        for i in range(6):
            q.push(req(bucket=32 if i % 2 == 0 else 64, t=0.0))
        seen = []
        while True:
            batch = q.collect(10.0, max_batch=8, deadline=0.1)
            if batch is None:
                break
            assert len({r.bucket for r in batch}) == 1
            seen.append((batch[0].bucket, len(batch)))
        assert sorted(seen) == [(32, 3), (64, 3)]

    def test_expired_request_preempts_full_bucket(self):
        # latency bound beats occupancy: a continuously full bucket must
        # not starve a deadline-expired request parked in a sparse bucket
        q = FairQueue({"interactive": 1.0}, max_depth=100)
        straggler = req(bucket=64, t=0.0)
        q.push(straggler)
        for i in range(8):
            q.push(req(bucket=32, t=1.0))
        batch = q.collect(1.0, max_batch=8, deadline=0.5)
        assert batch == [straggler]          # expired at t=0.5 < now
        # with the straggler served, the full bucket flushes as usual
        assert len(q.collect(1.0, max_batch=8, deadline=0.5)) == 8

    def test_force_drains_regardless_of_deadline(self):
        q = FairQueue({"interactive": 1.0})
        q.push(req(t=5.0))
        assert q.collect(5.0, 8, deadline=10.0) is None
        assert len(q.collect(5.0, 8, deadline=10.0, force=True)) == 1

    def test_empty_queue(self):
        q = FairQueue({"interactive": 1.0})
        assert q.next_flush_at(0.0, 8, 0.1) is None
        assert q.collect(0.0, 8, 0.1) is None
        assert q.collect(0.0, 8, 0.1, force=True) is None


class TestWeightedFairness:
    def test_backlogged_lanes_share_by_weight(self):
        q = FairQueue({"fast": 3.0, "slow": 1.0}, max_depth=200)
        for i in range(40):                 # interleaved arrivals, one bucket
            q.push(req(lane="fast", t=0.001 * i))
            q.push(req(lane="slow", t=0.001 * i))
        batch = q.collect(1.0, max_batch=16, deadline=0.0)
        counts = {"fast": 0, "slow": 0}
        for r in batch:
            counts[r.lane] += 1
        # 3:1 weights -> 12 fast / 4 slow in a 16-slot batch
        assert counts == {"fast": 12, "slow": 4}

    def test_single_lane_dispatch_is_arrival_order(self):
        q = FairQueue({"only": 2.0})
        reqs = [req(lane="only", t=float(i)) for i in range(7)]
        for r in reqs:
            q.push(r)
        out = []
        while len(q):
            out.extend(q.collect(100.0, max_batch=3, deadline=0.0))
        assert out == reqs

    def test_idle_lane_rejoins_at_current_vclock(self):
        q = FairQueue({"a": 1.0, "b": 1.0}, max_depth=100)
        for i in range(20):                 # lane a builds a long backlog
            q.push(req(lane="a", t=0.0))
        q.collect(1.0, max_batch=10, deadline=0.0)   # advances the vclock
        q.push(req(lane="b", t=1.0))        # b was idle the whole time
        batch = q.collect(1.0, max_batch=10, deadline=0.0)
        # b must not monopolize: it gets (roughly) one fair slot, not all
        assert sum(1 for r in batch if r.lane == "b") == 1

    def test_depths_snapshot(self):
        q = FairQueue({"a": 1.0, "b": 1.0})
        q.push(req(lane="a", bucket=32))
        q.push(req(lane="b", bucket=64))
        q.push(req(lane="b", bucket=64))
        d = q.depths()
        assert d["total"] == 3
        assert d["per_lane"] == {"a": 1, "b": 2}
        assert d["per_bucket"] == {32: 1, 64: 2}
