"""Differentiable token→grid scatter for decoder-style models.

UNETR-like decoders need regular spatial feature maps. With uniform patching
the token sequence *is* a grid; with APF the layout is irregular, so each
token's feature vector is broadcast over its quadtree-leaf footprint on a
``Z/cell`` grid. The scatter is a pure gather in the forward direction
(every grid cell reads from exactly one token), so autograd routes gradients
back to tokens through the fancy-indexing op.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .. import nn
from ..patching import PatchSequence

__all__ = ["token_index_map", "scatter_tokens_to_grid"]


def token_index_map(seq: PatchSequence, cell: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-cell source-token index and coverage mask for one sequence.

    Returns
    -------
    idx:
        (G, G) int array; cell (i, j) reads token ``idx[i, j]``. Cells not
        covered by any retained token point at token 0 but are masked out.
    mask:
        (G, G) float; 1.0 where covered, 0.0 in holes (dropped leaves).
    """
    z = seq.image_size
    if z % cell:
        raise ValueError(f"cell {cell} must divide image size {z}")
    g = z // cell
    idx = np.zeros((g, g), dtype=np.int64)
    mask = np.zeros((g, g), dtype=np.float64)
    for i in np.flatnonzero(seq.valid):
        s = int(seq.sizes[i])
        y0, x0 = int(seq.ys[i]) // cell, int(seq.xs[i]) // cell
        span = max(s // cell, 1)
        idx[y0:y0 + span, x0:x0 + span] = i
        mask[y0:y0 + span, x0:x0 + span] = 1.0
    return idx, mask


def scatter_tokens_to_grid(features: nn.Tensor, seqs: Sequence[PatchSequence],
                           cell: int) -> nn.Tensor:
    """Scatter (B, L, D) token features to (B, D, G, G) spatial maps.

    Differentiable w.r.t. ``features``; holes receive zeros and no gradient.
    """
    b, length, d = features.shape
    if len(seqs) != b:
        raise ValueError(f"batch mismatch: features batch {b} vs {len(seqs)} sequences")
    maps = []
    masks = []
    for seq in seqs:
        if len(seq) != length:
            raise ValueError("sequence length mismatch with feature tensor")
        idx, mask = token_index_map(seq, cell)
        maps.append(idx)
        masks.append(mask)
    idx = np.stack(maps)                                  # (B, G, G)
    mask = np.stack(masks)[:, None, :, :]                 # (B, 1, G, G)
    batch_idx = np.arange(b)[:, None, None]
    grid = features[batch_idx, idx]                       # (B, G, G, D) gather
    grid = grid.transpose(0, 3, 1, 2)                     # (B, D, G, G)
    return grid * nn.Tensor(mask.astype(grid.dtype))
