"""Tests for resize kernels used by APF patch downscaling."""

import numpy as np
import pytest

from repro.imaging import (downscale_pow2, resize_area, resize_bilinear,
                           resize_nearest)


class TestDownscalePow2:
    def test_factor1_is_copy(self):
        x = np.random.default_rng(0).random((8, 8))
        y = downscale_pow2(x, 1)
        np.testing.assert_array_equal(x, y)
        y[0, 0] = 99  # must not alias
        assert x[0, 0] != 99

    def test_exact_block_mean(self):
        x = np.arange(16, dtype=float).reshape(4, 4)
        y = downscale_pow2(x, 2)
        assert y.shape == (2, 2)
        assert y[0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_preserves_global_mean(self):
        x = np.random.default_rng(0).random((32, 32))
        assert downscale_pow2(x, 4).mean() == pytest.approx(x.mean())

    def test_channels(self):
        x = np.random.default_rng(0).random((8, 8, 3))
        assert downscale_pow2(x, 2).shape == (4, 4, 3)

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            downscale_pow2(np.zeros((6, 6)), 4)


class TestResizeArea:
    def test_matches_pow2_path(self):
        x = np.random.default_rng(0).random((16, 16))
        np.testing.assert_allclose(resize_area(x, 4, 4), downscale_pow2(x, 4))

    def test_nonuniform_shrink(self):
        x = np.ones((12, 9))
        y = resize_area(x, 4, 3)
        assert y.shape == (4, 3)
        np.testing.assert_allclose(y, 1.0)

    def test_upscale_falls_back_to_bilinear(self):
        x = np.ones((4, 4))
        y = resize_area(x, 8, 8)
        assert y.shape == (8, 8)
        np.testing.assert_allclose(y, 1.0)


class TestResizeBilinear:
    def test_identity(self):
        x = np.random.default_rng(0).random((8, 8))
        np.testing.assert_allclose(resize_bilinear(x, 8, 8), x, atol=1e-12)

    def test_constant_preserved(self):
        np.testing.assert_allclose(resize_bilinear(np.full((5, 7), 2.5), 10, 14), 2.5)

    def test_linear_ramp_preserved(self):
        # Bilinear must reproduce affine functions away from borders.
        x = np.tile(np.arange(16, dtype=float), (16, 1))
        y = resize_bilinear(x, 8, 8)
        diffs = np.diff(y[4])
        assert np.allclose(diffs, diffs[0], atol=1e-9)

    def test_output_range_bounded(self):
        x = np.random.default_rng(0).random((9, 9))
        y = resize_bilinear(x, 5, 13)
        assert y.min() >= x.min() - 1e-12 and y.max() <= x.max() + 1e-12


class TestResizeNearest:
    def test_values_subset_of_input(self):
        x = np.random.default_rng(0).integers(0, 5, size=(9, 9))
        y = resize_nearest(x, 4, 4)
        assert set(np.unique(y)).issubset(set(np.unique(x)))

    def test_preserves_dtype(self):
        x = np.zeros((8, 8), dtype=np.int32)
        assert resize_nearest(x, 4, 4).dtype == np.int32

    def test_upscale_repeats(self):
        x = np.array([[1, 2], [3, 4]])
        y = resize_nearest(x, 4, 4)
        np.testing.assert_array_equal(y[:2, :2], 1)


class TestPadToPow2:
    def test_pads_to_next_square(self):
        from repro.imaging import pad_to_pow2
        padded, (h, w) = pad_to_pow2(np.ones((48, 70)))
        assert padded.shape == (128, 128)
        assert (h, w) == (48, 70)

    def test_pow2_square_untouched_shape(self):
        from repro.imaging import pad_to_pow2
        padded, _ = pad_to_pow2(np.ones((64, 64)))
        assert padded.shape == (64, 64)

    def test_channels_preserved(self):
        from repro.imaging import pad_to_pow2
        padded, _ = pad_to_pow2(np.zeros((10, 10, 3)))
        assert padded.shape == (16, 16, 3)

    def test_edge_mode_extends_border(self):
        from repro.imaging import pad_to_pow2
        img = np.arange(9, dtype=float).reshape(3, 3)
        padded, _ = pad_to_pow2(img)
        assert padded.shape == (4, 4)
        assert padded[3, 3] == img[2, 2]

    def test_crop_back_roundtrip(self):
        from repro.imaging import pad_to_pow2
        from repro.patching import AdaptivePatcher
        rng = np.random.default_rng(0)
        img = rng.random((40, 56))
        padded, (h, w) = pad_to_pow2(img)
        seq = AdaptivePatcher(patch_size=4, split_value=2.0)(padded)
        rec = seq.scatter_to_image(seq.patches)[0][:h, :w]
        assert rec.shape == (40, 56)

    def test_rejects_4d(self):
        from repro.imaging import pad_to_pow2
        with pytest.raises(ValueError):
            pad_to_pow2(np.zeros((2, 2, 2, 2)))
