"""Tests for the trace exporters: Chrome JSON, validation, flame, paths."""

import json

import pytest

from repro.obs import (Tracer, chrome_trace, critical_paths, flame_text,
                       validate_trace, write_chrome_trace)


def _nested_tracer():
    """One engine track with a batch span containing the scheduler spans,
    plus a request async interval riding through the batch."""
    tr = Tracer()
    tr.async_begin("request", "engine", 0.0, 1, tid="interactive",
                   args={"rid": 1, "lane": "interactive", "kind": "fresh"})
    tr.complete("batch", "engine", 0.10, 0.50, tid="engine",
                args={"size": 1, "length": 16, "rids": [1]})
    tr.complete("batch.form", "engine", 0.10, 0.15, tid="engine")
    tr.complete("execute", "engine", 0.15, 0.40, tid="engine")
    tr.complete("plan.compile", "engine", 0.15, 0.20, tid="engine")
    tr.complete("stitch", "engine", 0.40, 0.50, tid="engine")
    tr.async_end("request", "engine", 0.50, 1, tid="interactive",
                 args={"outcome": "done"})
    return tr


class TestChromeTrace:
    def test_tracks_become_named_processes(self):
        tr = Tracer()
        tr.instant("a", "router", 0.0)
        tr.instant("b", "replica0", 0.0, tid="interactive")
        trace = chrome_trace(tr)
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        procs = {e["args"]["name"]: e["pid"] for e in meta
                 if e["name"] == "process_name"}
        assert procs == {"router": 1, "replica0": 2}
        threads = [(e["pid"], e["tid"], e["args"]["name"]) for e in meta
                   if e["name"] == "thread_name"]
        assert (2, 1, "interactive") in threads

    def test_timestamps_convert_to_microseconds(self):
        tr = Tracer()
        tr.complete("op", "t", 0.001, 0.0035)
        trace = chrome_trace(tr)
        ev = [e for e in trace["traceEvents"] if e["ph"] == "X"][0]
        assert ev["ts"] == 1000.0
        assert ev["dur"] == 2500.0

    def test_phase_specific_fields(self):
        tr = _nested_tracer()
        tr.instant("req.reject", "engine", 0.6, tid="interactive")
        events = chrome_trace(tr)["traceEvents"]
        by_ph = {}
        for e in events:
            by_ph.setdefault(e["ph"], []).append(e)
        assert all("dur" in e for e in by_ph["X"])
        assert all(e["s"] == "t" for e in by_ph["i"])
        assert all(e["cat"] == "request" and e["id"] == 1
                   for e in by_ph["b"] + by_ph["e"])

    def test_write_is_canonical_and_loadable(self, tmp_path):
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        write_chrome_trace(_nested_tracer(), str(p1))
        write_chrome_trace(_nested_tracer(), str(p2))
        assert p1.read_bytes() == p2.read_bytes()
        loaded = json.loads(p1.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert validate_trace(loaded) == []


class TestValidateTrace:
    def test_clean_trace_passes(self):
        assert validate_trace(chrome_trace(_nested_tracer())) == []

    def test_missing_event_list(self):
        assert validate_trace({}) == ["traceEvents missing or not a list"]

    def test_unknown_phase_flagged(self):
        errs = validate_trace({"traceEvents": [{"ph": "Z", "ts": 0}]})
        assert any("unknown phase" in e for e in errs)

    def test_negative_duration_flagged(self):
        errs = validate_trace({"traceEvents": [
            {"ph": "X", "name": "op", "pid": 1, "tid": 1,
             "ts": 0.0, "dur": -1.0}]})
        assert any("bad dur" in e for e in errs)

    def test_async_end_without_begin(self):
        errs = validate_trace({"traceEvents": [
            {"ph": "e", "name": "request", "cat": "request", "id": 7,
             "pid": 1, "tid": 1, "ts": 1.0,
             "args": {"outcome": "done"}}]})
        assert any("without begin" in e for e in errs)

    def test_unclosed_begin_flagged(self):
        errs = validate_trace({"traceEvents": [
            {"ph": "b", "name": "request", "cat": "request", "id": 7,
             "pid": 1, "tid": 1, "ts": 1.0}]})
        assert any("never closed" in e for e in errs)

    def test_request_end_requires_outcome(self):
        errs = validate_trace({"traceEvents": [
            {"ph": "b", "name": "request", "cat": "request", "id": 7,
             "pid": 1, "tid": 1, "ts": 0.0},
            {"ph": "e", "name": "request", "cat": "request", "id": 7,
             "pid": 1, "tid": 1, "ts": 1.0}]})
        assert any("no outcome" in e for e in errs)

    def test_overlapping_spans_without_nesting_flagged(self):
        errs = validate_trace({"traceEvents": [
            {"ph": "X", "name": "a", "pid": 1, "tid": 1,
             "ts": 0.0, "dur": 10.0},
            {"ph": "X", "name": "b", "pid": 1, "tid": 1,
             "ts": 5.0, "dur": 10.0}]})
        assert any("without nesting" in e for e in errs)

    def test_sibling_spans_on_same_thread_ok(self):
        errs = validate_trace({"traceEvents": [
            {"ph": "X", "name": "a", "pid": 1, "tid": 1,
             "ts": 0.0, "dur": 1.0},
            {"ph": "X", "name": "b", "pid": 1, "tid": 1,
             "ts": 1.0, "dur": 1.0}]})
        assert errs == []

    def test_zero_duration_children_at_same_instant_nest(self):
        # the DES shape: parent and child can share a start instant
        errs = validate_trace({"traceEvents": [
            {"ph": "X", "name": "batch", "pid": 1, "tid": 1,
             "ts": 2.0, "dur": 0.5},
            {"ph": "X", "name": "execute", "pid": 1, "tid": 1,
             "ts": 2.0, "dur": 0.0},
            {"ph": "X", "name": "stitch", "pid": 1, "tid": 1,
             "ts": 2.5, "dur": 0.0}]})
        assert errs == []


class TestFlameText:
    def test_nesting_and_aggregation(self):
        tr = Tracer()
        for k in range(2):
            base = float(k)
            tr.complete("batch", "engine", base, base + 0.5, tid="engine")
            tr.complete("execute", "engine", base + 0.1, base + 0.4,
                        tid="engine")
        text = flame_text(tr)
        lines = text.splitlines()
        assert lines[0] == "engine/engine"
        batch_line = next(ln for ln in lines if "batch" in ln)
        exec_line = next(ln for ln in lines if "execute" in ln)
        assert "x2" in batch_line and "x2" in exec_line
        # execute is indented one level deeper than batch
        assert (len(exec_line) - len(exec_line.lstrip())
                > len(batch_line) - len(batch_line.lstrip()))

    def test_min_seconds_prunes(self):
        tr = Tracer()
        tr.complete("big", "t", 0.0, 1.0)
        tr.complete("tiny", "t", 2.0, 2.0001)
        text = flame_text(tr, min_seconds=0.01)
        assert "big" in text and "tiny" not in text


class TestCriticalPaths:
    def test_batched_request_full_breakdown(self):
        paths = critical_paths(_nested_tracer())
        row = paths[1]
        assert row["outcome"] == "done"
        assert row["total"] == pytest.approx(0.5)
        assert row["queue"] == pytest.approx(0.10)
        assert row["batch_form"] == pytest.approx(0.05)
        assert row["plan"] == pytest.approx(0.05)
        # execute excludes the compile time nested inside it
        assert row["execute"] == pytest.approx(0.20)
        assert row["stitch"] == pytest.approx(0.10)

    def test_cache_hit_has_total_and_outcome_only(self):
        tr = Tracer()
        tr.async_begin("request", "engine", 1.0, 5, tid="interactive",
                       args={"kind": "cache_hit"})
        tr.async_end("request", "engine", 1.0, 5, tid="interactive",
                     args={"outcome": "cache_hit"})
        row = critical_paths(tr)[5]
        assert row == {"outcome": "cache_hit", "total": 0.0}

    def test_open_request_reports_open(self):
        tr = Tracer()
        tr.async_begin("request", "engine", 1.0, 9, tid="bulk")
        row = critical_paths(tr)[9]
        assert row["outcome"] == "open"
        assert "total" not in row
