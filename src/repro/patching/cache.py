"""Precomputed patch datasets — Algorithm 1 lines 2-7 done faithfully.

The paper's algorithm builds the patched dataset ``Dp`` *once* before the
epoch loop ("Add to Dp = Dp ∪ (xp, xn)") and amortizes the preprocessing
over all epochs. The task adapters in :mod:`repro.train.tasks` recompute
patches per epoch for simplicity; :class:`PatchCache` restores the paper's
amortization and is what the overhead accounting in §IV-G.3 assumes.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Dict, Hashable, Optional

import numpy as np

from .adaptive import AdaptivePatcher
from .sequence import PatchSequence

__all__ = ["PatchCache", "LRUPatchCache", "CachingPatcher"]


class PatchCache:
    """Key→:class:`PatchSequence` store with hit/miss accounting."""

    def __init__(self, max_items: Optional[int] = None):
        if max_items is not None and max_items < 1:
            raise ValueError("max_items must be positive")
        self._store: Dict[Hashable, PatchSequence] = {}
        self.max_items = max_items
        self.hits = 0
        self.misses = 0
        self.build_seconds = 0.0

    def __len__(self) -> int:
        return len(self._store)

    def get_or_build(self, key: Hashable,
                     build: Callable[[], PatchSequence]) -> PatchSequence:
        if key in self._store:
            self.hits += 1
            return self._store[key]
        self.misses += 1
        t0 = time.perf_counter()
        seq = build()
        self.build_seconds += time.perf_counter() - t0
        if self.max_items is None or len(self._store) < self.max_items:
            self._store[key] = seq
        return seq

    def clear(self) -> None:
        self._store.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUPatchCache(PatchCache):
    """Bounded :class:`PatchCache` that evicts the least-recently-used entry.

    Unlike the base class — which simply stops storing once full (fine for
    the paper's fixed training sets) — the LRU variant keeps serving-style
    workloads hot: the working set stays cached while one-off images age out.
    """

    def __init__(self, max_items: int = 1024):
        if max_items < 1:
            raise ValueError("max_items must be positive")
        super().__init__(max_items)
        self._store: "OrderedDict[Hashable, PatchSequence]" = OrderedDict()
        self.evictions = 0

    def get_or_build(self, key: Hashable,
                     build: Callable[[], PatchSequence]) -> PatchSequence:
        if key in self._store:
            self.hits += 1
            self._store.move_to_end(key)
            return self._store[key]
        self.misses += 1
        t0 = time.perf_counter()
        seq = build()
        self.build_seconds += time.perf_counter() - t0
        self.put(key, seq)
        return seq

    def put(self, key: Hashable, seq: PatchSequence) -> None:
        """Insert (or refresh) an entry, evicting the oldest when full."""
        if key in self._store:
            self._store.move_to_end(key)
        self._store[key] = seq
        while len(self._store) > self.max_items:
            self._store.popitem(last=False)
            self.evictions += 1

    def get(self, key: Hashable) -> Optional[PatchSequence]:
        """Hit-counting lookup without building; None on miss."""
        if key in self._store:
            self.hits += 1
            self._store.move_to_end(key)
            return self._store[key]
        self.misses += 1
        return None


class CachingPatcher:
    """Wrap a patcher so repeated calls on the same image are free.

    Images are keyed by a caller-provided id (``key=``) or by a content hash.
    The random drop step is applied *after* the cache, so training still sees
    fresh drops each epoch while the expensive blur→Canny→quadtree pipeline
    runs exactly once per image — Algorithm 1's amortization.
    """

    def __init__(self, patcher: AdaptivePatcher,
                 cache: Optional[PatchCache] = None):
        if not isinstance(patcher, AdaptivePatcher):
            raise TypeError("CachingPatcher wraps an AdaptivePatcher")
        self.patcher = patcher
        self.cache = cache or PatchCache()

    @property
    def config(self):
        return self.patcher.config

    @staticmethod
    def _content_key(image: np.ndarray) -> Hashable:
        a = np.ascontiguousarray(image)
        return (a.shape, a.dtype.str, hash(a.tobytes()))

    def __call__(self, image: np.ndarray,
                 key: Optional[Hashable] = None) -> PatchSequence:
        return self.extract(image, key=key)

    def extract(self, image: np.ndarray,
                key: Optional[Hashable] = None) -> PatchSequence:
        k = key if key is not None else self._content_key(image)
        natural = self.cache.get_or_build(
            k, lambda: self.patcher.extract_natural(image))
        target = self.patcher.config.target_length
        if target is None:
            return natural
        return self.patcher.fit_length(natural, target)

    def extract_natural(self, image: np.ndarray,
                        key: Optional[Hashable] = None) -> PatchSequence:
        k = key if key is not None else self._content_key(image)
        return self.cache.get_or_build(
            k, lambda: self.patcher.extract_natural(image))

    def patchify_labels(self, mask: np.ndarray, seq: PatchSequence) -> np.ndarray:
        return self.patcher.patchify_labels(mask, seq)
