"""Tests for the synthetic PAIP/BTCV generators: determinism, structure, and
the detail-sparsity property APF depends on."""

import numpy as np
import pytest

from repro.data import (BTCV_ORGANS, NUM_BTCV_CLASSES, NUM_ORGAN_CLASSES,
                        generate_ct_slice, generate_wsi)
from repro.patching import AdaptivePatcher, UniformPatcher


class TestPAIPGenerator:
    def test_shapes_and_ranges(self):
        s = generate_wsi(64, seed=0)
        assert s.image.shape == (64, 64, 3)
        assert s.mask.shape == (64, 64)
        assert 0.0 <= s.image.min() and s.image.max() <= 1.0
        assert set(np.unique(s.mask)).issubset({0.0, 1.0})
        assert 0 <= s.organ < NUM_ORGAN_CLASSES

    def test_deterministic(self):
        a = generate_wsi(64, seed=5)
        b = generate_wsi(64, seed=5)
        np.testing.assert_array_equal(a.image, b.image)
        np.testing.assert_array_equal(a.mask, b.mask)
        assert a.organ == b.organ

    def test_seeds_differ(self):
        a = generate_wsi(64, seed=1)
        b = generate_wsi(64, seed=2)
        assert not np.array_equal(a.image, b.image)

    def test_organ_parameter_respected(self):
        s = generate_wsi(64, seed=0, organ=3)
        assert s.organ == 3

    def test_organ_out_of_range(self):
        with pytest.raises(ValueError):
            generate_wsi(64, seed=0, organ=6)

    def test_too_small_resolution(self):
        with pytest.raises(ValueError):
            generate_wsi(16, seed=0)

    def test_lesion_nonempty_most_seeds(self):
        # Lesions are present in the typical sample (some seeds may be empty —
        # tissue blob missed — but the majority must have positives).
        frac = np.mean([generate_wsi(64, seed=s).mask.any() for s in range(10)])
        assert frac >= 0.7

    def test_lesion_inside_darker_tissue(self):
        s = generate_wsi(128, seed=3)
        if s.mask.any():
            lesion_lum = s.image[s.mask > 0].mean()
            bg_lum = s.image[s.mask == 0].mean()
            assert lesion_lum < bg_lum

    def test_detail_sparsity_enables_compression(self):
        # The generator's reason for existing: APF must beat uniform by >2x.
        s = generate_wsi(128, seed=0)
        apf = AdaptivePatcher(patch_size=4, split_value=8.0)(s.image)
        uniform = UniformPatcher(4)(s.image)
        assert len(apf) * 2 < len(uniform)

    def test_organ_classes_differ_in_lesion_morphology(self):
        # The class signal is lesion morphology: organ 0 grows a few large
        # lesions, organ 5 many small specks, at matched total area.
        from scipy import ndimage

        def stats(o):
            counts, areas = [], []
            for seed in range(3):
                m = generate_wsi(128, seed=seed, organ=o).mask
                _, n = ndimage.label(m)
                counts.append(n)
                areas.append(m.mean())
            return float(np.mean(counts)), float(np.mean(areas))

        c0, a0 = stats(0)
        c5, a5 = stats(5)
        assert c5 > c0 * 3          # many specks vs few blobs
        assert 0.3 < a5 / max(a0, 1e-9) < 3.0  # total area same order

    def test_lesion_stripe_orientation_varies(self):
        # Intralesional stripes encode the organ in their orientation: the
        # dominant gradient direction inside lesions must differ between
        # organ 0 (vertical stripes, theta=0) and organ 3 (theta=90 deg).
        def mean_grad_ratio(o):
            s = generate_wsi(128, seed=1, organ=o)
            img = s.image.mean(axis=2)
            gy, gx = np.gradient(img)
            m = s.mask > 0
            if m.sum() < 10:
                return None
            return float(np.abs(gx[m]).mean() / (np.abs(gy[m]).mean() + 1e-9))

        r0 = mean_grad_ratio(0)   # stripes vary along x → |gx| dominant
        r3 = mean_grad_ratio(3)   # theta = 90 deg → |gy| dominant
        if r0 is not None and r3 is not None:
            assert r0 > r3

    def test_organ_classes_share_tint(self):
        # Morphology, not palette: mean colors must be close across organs so
        # a global-color shortcut cannot solve Table V.
        means = [generate_wsi(64, seed=0, organ=o).image.mean(axis=(0, 1))
                 for o in range(NUM_ORGAN_CLASSES)]
        dists = [np.abs(means[i] - means[j]).max()
                 for i in range(6) for j in range(i + 1, 6)]
        assert max(dists) < 0.12


class TestBTCVGenerator:
    def test_shapes_and_classes(self):
        s = generate_ct_slice(64, seed=0)
        assert s.image.shape == (64, 64)
        assert s.mask.shape == (64, 64)
        assert s.mask.min() >= 0 and s.mask.max() < NUM_BTCV_CLASSES

    def test_deterministic(self):
        a = generate_ct_slice(64, seed=9)
        b = generate_ct_slice(64, seed=9)
        np.testing.assert_array_equal(a.image, b.image)
        np.testing.assert_array_equal(a.mask, b.mask)

    def test_thirteen_organs_defined(self):
        assert len(BTCV_ORGANS) == 13
        assert NUM_BTCV_CLASSES == 14

    def test_most_organs_present_at_center_slice(self):
        s = generate_ct_slice(128, seed=0, slice_index=0)
        present = set(np.unique(s.mask)) - {0}
        assert len(present) >= 10  # small organs may collide at low res

    def test_organs_shrink_away_from_center(self):
        center = (generate_ct_slice(128, seed=0, slice_index=0).mask > 0).sum()
        edge = (generate_ct_slice(128, seed=0, slice_index=12).mask > 0).sum()
        assert edge < center

    def test_organs_inside_body(self):
        s = generate_ct_slice(64, seed=1)
        organ_pixels = s.mask > 0
        assert s.image[organ_pixels].min() > 0.2  # body interior is bright

    def test_subject_poses_differ(self):
        a = generate_ct_slice(64, seed=0)
        b = generate_ct_slice(64, seed=1)
        assert (a.mask != b.mask).any()


class TestDatasets:
    def test_paip_dataset_lazy_and_stable(self):
        from repro.data import SyntheticPAIP
        ds = SyntheticPAIP(64, n=5, base_seed=10)
        assert len(ds) == 5
        np.testing.assert_array_equal(ds[2].image, ds[2].image)

    def test_index_errors(self):
        from repro.data import SyntheticBTCV, SyntheticPAIP
        with pytest.raises(IndexError):
            SyntheticPAIP(64, n=3)[3]
        with pytest.raises(IndexError):
            SyntheticBTCV(64, n_subjects=2)[2]

    def test_btcv_subject_slice_mapping(self):
        from repro.data import SyntheticBTCV
        ds = SyntheticBTCV(64, n_subjects=2, slices_per_subject=3)
        assert len(ds) == 6
        # Slices of one subject share the subject pose → masks correlated.
        a, b = ds[0].mask, ds[1].mask
        c = ds[3].mask  # different subject
        same_subject_overlap = ((a > 0) & (b > 0)).sum()
        assert same_subject_overlap > 0

    def test_split_fractions(self):
        from repro.data import SyntheticPAIP, train_val_test_split
        ds = SyntheticPAIP(64, n=20)
        tr, va, te = train_val_test_split(ds, seed=0)
        assert len(tr) == 14 and len(va) == 2 and len(te) == 4
        # Disjoint cover.
        all_idx = sorted(tr.indices + va.indices + te.indices)
        assert all_idx == list(range(20))

    def test_split_bad_fractions(self):
        from repro.data import SyntheticPAIP, train_val_test_split
        with pytest.raises(ValueError):
            train_val_test_split(SyntheticPAIP(64, n=4), fractions=(0.5, 0.5, 0.5))

    def test_dataloader_batching(self):
        from repro.data import DataLoader, SyntheticPAIP
        ds = SyntheticPAIP(64, n=7)
        dl = DataLoader(ds, batch_size=3)
        batches = list(dl)
        assert [len(b) for b in batches] == [3, 3, 1]
        assert len(dl) == 3

    def test_dataloader_drop_last(self):
        from repro.data import DataLoader, SyntheticPAIP
        dl = DataLoader(SyntheticPAIP(64, n=7), batch_size=3, drop_last=True)
        assert [len(b) for b in dl] == [3, 3]
        assert len(dl) == 2

    def test_dataloader_shuffle_changes_across_epochs(self):
        from repro.data import DataLoader, SyntheticBTCV
        ds = SyntheticBTCV(64, n_subjects=8)
        dl = DataLoader(ds, batch_size=8, shuffle=True, seed=1)
        e1 = [s.slice_index for s in next(iter(dl))]
        # slice_index identical here; compare via image hash instead
        h1 = [b.image.sum() for b in next(iter(dl))]
        h2 = [b.image.sum() for b in next(iter(dl))]
        assert h1 != h2 or len(set(h1)) == 1
