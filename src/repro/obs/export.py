"""Trace exporters — Chrome trace-event JSON, flame text, critical paths.

Three views of one :class:`~repro.obs.tracer.Tracer` event list:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (load ``trace.json`` in Perfetto or
  ``chrome://tracing``). One *process* per tracer track (replica,
  router, viewer, …), one *thread* per lane/sub-track; per-request
  lifetimes are async ``b``/``e`` intervals keyed by ``rid``.
  Serialization is canonical (sorted keys, no whitespace) so same-seed
  DES runs export byte-identical files — the CI determinism gate diffs
  the bytes.
* :func:`flame_text` — an indented who-contains-whom time summary per
  track/thread, for terminals without a trace viewer.
* :func:`critical_paths` — per-request ``queue / batch_form / plan /
  execute / stitch`` breakdowns joined from the request's async interval
  and the batch span that carried it.

:func:`validate_trace` checks the structural invariants the bench gate
pins: spans have non-negative durations and nest properly per thread,
every opened request interval closes exactly once, and cancelled /
failed requests are marked with an outcome.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from .tracer import Tracer

__all__ = ["chrome_trace", "write_chrome_trace", "validate_trace",
           "flame_text", "critical_paths"]


def _us(seconds: float) -> float:
    """Seconds -> microseconds, rounded so repr is stable across platforms."""
    return round(seconds * 1e6, 3)


def chrome_trace(tracer: Tracer) -> dict:
    """Render the tracer's events as a Chrome trace-event dict.

    Tracks become processes (pid = first-seen order), ``tid`` strings
    become per-track thread ids, and ``process_name``/``thread_name``
    metadata events label them so Perfetto shows ``replica0 / interactive``
    instead of ``pid 2 / tid 1``.
    """
    pids = tracer.tracks
    tids: Dict[Tuple[str, str], int] = {}
    out: List[dict] = []

    for track, pid in pids.items():
        out.append({"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                    "args": {"name": track}})

    for ev in tracer.events:
        track = ev["track"]
        pid = pids[track]
        key = (track, ev["tid"])
        tid = tids.get(key)
        if tid is None:
            tid = len([k for k in tids if k[0] == track]) + 1
            tids[key] = tid
            out.append({"ph": "M", "name": "thread_name", "pid": pid,
                        "tid": tid, "args": {"name": ev["tid"]}})
        ce: dict = {"ph": ev["ph"], "name": ev["name"], "pid": pid,
                    "tid": tid, "ts": _us(ev["ts"])}
        if ev["ph"] == "X":
            ce["dur"] = _us(ev["dur"])
        elif ev["ph"] == "i":
            ce["s"] = "t"
        elif ev["ph"] in ("b", "e"):
            ce["cat"] = ev["cat"]
            ce["id"] = ev["id"]
        if ev.get("args"):
            ce["args"] = ev["args"]
        out.append(ce)

    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str) -> dict:
    """Serialize :func:`chrome_trace` to ``path`` in canonical form
    (sorted keys, compact separators) — byte-stable for diffing."""
    trace = chrome_trace(tracer)
    blob = json.dumps(trace, sort_keys=True, separators=(",", ":"))
    with open(path, "w") as fh:
        fh.write(blob)
    return trace


def validate_trace(trace: dict) -> List[str]:
    """Structural invariants on an exported Chrome trace.

    Returns a list of human-readable violations (empty == valid):

    * every event has the fields its phase requires; ``X`` durations
      are non-negative;
    * ``X`` spans on one (pid, tid) nest — sorted by start time, each
      span is fully inside or fully outside the enclosing one;
    * async intervals (``b``/``e``) pair exactly 1:1 per (cat, id),
      end not before begin, and every *request* end names its outcome
      (``done`` / ``cancelled`` / ``failed`` / …) in args.
    """
    errors: List[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]

    spans: Dict[Tuple[int, int], List[Tuple[float, float, str]]] = {}
    opens: Dict[Tuple[str, int], List[float]] = {}

    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in ("X", "i", "b", "e", "M"):
            errors.append(f"event {i}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue
        if not isinstance(ev.get("ts"), (int, float)):
            errors.append(f"event {i} ({ev.get('name')}): missing ts")
            continue
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"event {i} ({ev.get('name')}): bad dur {dur!r}")
                continue
            spans.setdefault((ev.get("pid"), ev.get("tid")), []).append(
                (ev["ts"], dur, ev.get("name", "?")))
        elif ph == "b":
            opens.setdefault((ev.get("cat"), ev.get("id")), []).append(ev["ts"])
        elif ph == "e":
            key = (ev.get("cat"), ev.get("id"))
            pending = opens.get(key)
            if not pending:
                errors.append(f"event {i} ({ev.get('name')}): async end "
                              f"without begin (id={ev.get('id')})")
                continue
            t0 = pending.pop(0)
            if ev["ts"] < t0:
                errors.append(f"async {key}: ends at {ev['ts']} before "
                              f"begin {t0}")
            if ev.get("cat") == "request":
                outcome = (ev.get("args") or {}).get("outcome")
                if not outcome:
                    errors.append(f"request id={ev.get('id')}: end has no "
                                  "outcome")

    for key, pending in opens.items():
        if pending:
            errors.append(f"async {key}: {len(pending)} begin(s) never closed")

    # 0.01 us tolerance: ts and dur round to ns independently in the
    # exporter, so abutting siblings can disagree by ~0.001 us
    eps = 1e-2
    for (pid, tid), sl in spans.items():
        sl.sort(key=lambda s: (s[0], -s[1]))
        stack: List[Tuple[float, float, str]] = []
        for ts, dur, name in sl:
            while stack and ts >= stack[-1][0] + stack[-1][1] - eps:
                stack.pop()
            if stack:
                p_ts, p_dur, p_name = stack[-1]
                if ts + dur > p_ts + p_dur + eps:
                    errors.append(
                        f"pid {pid} tid {tid}: span {name!r} "
                        f"[{ts},{ts + dur}] overlaps {p_name!r} "
                        f"[{p_ts},{p_ts + p_dur}] without nesting")
            stack.append((ts, dur, name))

    return errors


def flame_text(tracer: Tracer, *, min_seconds: float = 0.0) -> str:
    """Indented inclusive-time summary of the span tree per track/thread.

    Siblings with the same name aggregate (total seconds + call count);
    children indent under their containing span. ``min_seconds`` prunes
    noise rows. Instants and async intervals are omitted — this is the
    where-did-the-time-go view, not the request ledger.
    """
    groups: Dict[Tuple[str, str], List[dict]] = {}
    for ev in tracer.events:
        if ev["ph"] == "X":
            groups.setdefault((ev["track"], ev["tid"]), []).append(ev)

    lines: List[str] = []
    for (track, tid), evs in groups.items():
        evs.sort(key=lambda e: (e["ts"], -e["dur"]))
        # path tuple -> [seconds, calls]
        agg: Dict[Tuple[str, ...], List[float]] = {}
        stack: List[Tuple[float, float, str]] = []
        for ev in evs:
            ts, dur = ev["ts"], ev["dur"]
            while stack and ts >= stack[-1][0] + stack[-1][1] - 1e-12:
                stack.pop()
            path = tuple(s[2] for s in stack) + (ev["name"],)
            cell = agg.setdefault(path, [0.0, 0])
            cell[0] += dur
            cell[1] += 1
            stack.append((ts, dur, ev["name"]))
        lines.append(f"{track}/{tid}")
        for path in sorted(agg, key=lambda p: (p[:-1], -agg[p][0], p[-1])):
            seconds, calls = agg[path]
            if seconds < min_seconds:
                continue
            indent = "  " * len(path)
            lines.append(f"{indent}{path[-1]:<24s} {seconds:10.6f}s "
                         f"x{int(calls)}")
    return "\n".join(lines)


def critical_paths(tracer: Tracer) -> Dict[int, Dict[str, float]]:
    """Per-request breakdown: where each rid's latency went.

    Joins the request's async interval (begin at admission, end at
    completion) with the ``batch`` span that executed it (batch args
    carry ``rids``) and that batch's child spans::

        queue       admission -> batch start (waiting in the FairQueue)
        batch_form  fit + collate inside the scheduler
        plan        plan-cache miss compile time (0.0 on a hit)
        execute     compiled-graph run
        stitch      scatter back to per-tile maps
        total       admission -> completion
        outcome     done / cancelled / failed / cache_hit / collapsed

    Requests that never reached a batch (cache hits, collapsed twins,
    cancelled while queued) report only ``queue``-less fields: their
    ``total`` and ``outcome`` still appear.
    """
    begins: Dict[int, dict] = {}
    ends: Dict[int, dict] = {}
    batches: List[dict] = []
    children: Dict[Tuple[str, str], List[dict]] = {}

    for ev in tracer.events:
        if ev["ph"] == "b" and ev.get("cat") == "request":
            begins.setdefault(ev["id"], ev)
        elif ev["ph"] == "e" and ev.get("cat") == "request":
            ends.setdefault(ev["id"], ev)
        elif ev["ph"] == "X":
            if ev["name"] == "batch":
                batches.append(ev)
            else:
                children.setdefault((ev["track"], ev["tid"]), []).append(ev)

    # rid -> the batch span that ran it, plus that batch's sub-span totals.
    per_batch: List[Tuple[dict, Dict[str, float]]] = []
    for b in batches:
        inside: Dict[str, float] = {}
        t0, t1 = b["ts"], b["ts"] + b["dur"]
        for ev in children.get((b["track"], b["tid"]), []):
            if ev["ts"] >= t0 - 1e-12 and ev["ts"] + ev["dur"] <= t1 + 1e-12:
                inside[ev["name"]] = inside.get(ev["name"], 0.0) + ev["dur"]
        per_batch.append((b, inside))

    out: Dict[int, Dict[str, float]] = {}
    for rid, bev in sorted(begins.items()):
        eev = ends.get(rid)
        row: Dict[str, float] = {}
        args = bev.get("args") or {}
        end_args = (eev.get("args") or {}) if eev else {}
        row["outcome"] = end_args.get("outcome",
                                      args.get("outcome", "open"))
        if eev is not None:
            row["total"] = eev["ts"] - bev["ts"]
        for b, inside in per_batch:
            rids = (b.get("args") or {}).get("rids") or []
            if rid in rids:
                row["queue"] = b["ts"] - bev["ts"]
                row["batch_form"] = inside.get("batch.form", 0.0)
                row["plan"] = inside.get("plan.compile", 0.0)
                row["execute"] = inside.get("execute", 0.0) \
                    - inside.get("plan.compile", 0.0)
                row["stitch"] = inside.get("stitch", 0.0)
                break
        out[rid] = row
    return out
