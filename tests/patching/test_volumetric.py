"""Tests for the volumetric (octree) adaptive patcher extension."""

import numpy as np
import pytest

from repro.data.synthetic_volume import generate_ct_volume
from repro.patching import (VolumeAPFConfig, VolumetricAdaptivePatcher)


@pytest.fixture(scope="module")
def ct():
    return generate_ct_volume(32, 32, seed=0)


class TestConfig:
    def test_bad_patch(self):
        with pytest.raises(ValueError):
            VolumeAPFConfig(patch_size=3)

    def test_bad_quantile(self):
        with pytest.raises(ValueError):
            VolumeAPFConfig(detail_quantile=1.5)

    def test_config_or_kwargs(self):
        with pytest.raises(ValueError):
            VolumetricAdaptivePatcher(VolumeAPFConfig(), patch_size=2)


class TestVolumeGenerator:
    def test_shapes(self, ct):
        assert ct.volume.shape == (32, 32, 32)
        assert ct.mask.shape == (32, 32, 32)

    def test_deterministic(self, ct):
        again = generate_ct_volume(32, 32, seed=0)
        np.testing.assert_array_equal(ct.volume, again.volume)

    def test_organs_shrink_toward_edges(self, ct):
        center = (ct.mask[16] > 0).sum()
        edge = (ct.mask[0] > 0).sum()
        assert edge < center

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_ct_volume(32, 0, seed=0)


class TestVolumetricPatcher:
    def test_detail_map_sparsity(self, ct):
        p = VolumetricAdaptivePatcher(patch_size=4, split_value=8.0)
        d = p.detail_map(ct.volume)
        assert d.shape == ct.volume.shape
        assert 0.0 < d.mean() < 0.06  # ~3% of voxels at quantile 0.97

    def test_sequence_shorter_than_uniform(self, ct):
        p = VolumetricAdaptivePatcher(patch_size=4, split_value=8.0)
        seq = p(ct.volume)
        uniform = (32 // 4) ** 3
        assert len(seq) < uniform
        assert seq.patches.shape[1:] == (4, 4, 4)

    def test_morton_ordering(self, ct):
        from repro.quadtree import morton3d_encode
        seq = VolumetricAdaptivePatcher(patch_size=4, split_value=8.0)(ct.volume)
        codes = morton3d_encode(seq.zs, seq.ys, seq.xs).astype(np.int64)
        assert (np.diff(codes) > 0).all()

    def test_scatter_roundtrip_mean(self, ct):
        seq = VolumetricAdaptivePatcher(patch_size=4, split_value=8.0)(ct.volume)
        rec = seq.scatter_to_volume(seq.patches)
        assert rec.shape == (32, 32, 32)
        assert rec.mean() == pytest.approx(ct.volume.mean(), rel=1e-9)

    def test_scatter_scalars(self, ct):
        seq = VolumetricAdaptivePatcher(patch_size=4, split_value=8.0)(ct.volume)
        rec = seq.scatter_to_volume(np.ones(len(seq)))
        np.testing.assert_allclose(rec, 1.0)  # full coverage

    def test_tokens_and_coords(self, ct):
        seq = VolumetricAdaptivePatcher(patch_size=4, split_value=8.0)(ct.volume)
        assert seq.tokens().shape == (len(seq), 64)
        c = seq.coords()
        assert c.shape == (len(seq), 4)
        assert (c >= 0).all() and (c <= 1 + 1e-9).all()

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            VolumetricAdaptivePatcher(patch_size=4)(np.zeros((8, 8)))

    def test_tokens_feed_vit(self, ct):
        # The volumetric tokens slot straight into the 2-D-agnostic backbone.
        from repro.models import ViTBackbone
        seq = VolumetricAdaptivePatcher(patch_size=4, split_value=8.0)(ct.volume)
        model = ViTBackbone(token_dim=64, dim=16, depth=1, heads=2,
                            max_len=len(seq), use_coords=False)
        out = model(seq.tokens()[None].astype(np.float32))
        assert out.shape == (1, len(seq), 16)
