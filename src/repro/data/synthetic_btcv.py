"""Synthetic BTCV-like abdominal CT slice generator.

The BTCV challenge (paper Table IV) annotates 13 abdominal organs on 512^2 CT
slices. This generator composes 13 organ-like structures (ellipses with
per-sample pose jitter and smooth intensity texture) inside a body outline,
giving a faithful 13-class + background segmentation task with exact masks.

Class ids follow BTCV convention: 0 = background, 1..13 = organs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

__all__ = ["BTCVSample", "generate_ct_slice", "NUM_BTCV_CLASSES", "BTCV_ORGANS"]

NUM_BTCV_CLASSES = 14  # background + 13 organs

#: (name, center_y, center_x, axis_y, axis_x, intensity) in body-fraction units.
BTCV_ORGANS = [
    ("spleen",        0.38, 0.72, 0.10, 0.08, 0.62),
    ("right_kidney",  0.62, 0.30, 0.08, 0.06, 0.55),
    ("left_kidney",   0.62, 0.70, 0.08, 0.06, 0.55),
    ("gallbladder",   0.45, 0.38, 0.05, 0.04, 0.48),
    ("esophagus",     0.28, 0.50, 0.04, 0.03, 0.50),
    ("liver",         0.42, 0.28, 0.16, 0.13, 0.66),
    ("stomach",       0.40, 0.55, 0.11, 0.09, 0.45),
    ("aorta",         0.55, 0.48, 0.04, 0.04, 0.72),
    ("ivc",           0.55, 0.56, 0.04, 0.035, 0.68),
    ("portal_vein",   0.48, 0.44, 0.05, 0.03, 0.60),
    ("pancreas",      0.52, 0.52, 0.09, 0.04, 0.52),
    ("right_adrenal", 0.50, 0.34, 0.03, 0.02, 0.58),
    ("left_adrenal",  0.50, 0.66, 0.03, 0.02, 0.58),
]


@dataclass
class BTCVSample:
    """One synthetic CT slice: ``image`` (Z, Z) in [0,1]; ``mask`` (Z, Z) int in [0, 14)."""

    image: np.ndarray
    mask: np.ndarray
    slice_index: int = 0


def generate_ct_slice(resolution: int, seed: int,
                      slice_index: int = 0) -> BTCVSample:
    """Generate a synthetic axial CT slice. Deterministic per (resolution, seed,
    slice_index); adjacent slice indices get correlated organ poses (like
    neighbouring slices of one scan)."""
    if resolution < 32:
        raise ValueError(f"resolution must be >= 32, got {resolution}")
    z = resolution
    subject_rng = np.random.default_rng(np.random.SeedSequence([resolution, seed, 0xB7]))
    # Subject-level pose jitter shared across slices; slice-level wobble small.
    subject_jitter = subject_rng.normal(0, 0.015, size=(len(BTCV_ORGANS), 4))
    # slice_index may be negative (slices below the subject center); offset it
    # into the non-negative range SeedSequence requires.
    slice_rng = np.random.default_rng(
        np.random.SeedSequence([resolution, seed, slice_index + 2 ** 20, 0xB8]))
    wobble = slice_rng.normal(0, 0.005, size=(len(BTCV_ORGANS), 4))
    # Organs shrink/disappear away from their central slice.
    axial = np.exp(-0.5 * (slice_index / 6.0) ** 2) if slice_index else 1.0

    yy, xx = np.mgrid[0:z, 0:z] / z

    # Body outline: large soft ellipse.
    body = ((yy - 0.5) / 0.42) ** 2 + ((xx - 0.5) / 0.46) ** 2 < 1.0
    img = np.full((z, z), 0.08)
    img[body] = 0.30

    # Low-frequency soft-tissue texture inside the body.
    tex = ndimage.gaussian_filter(slice_rng.standard_normal((z, z)), z / 24.0)
    tex = (tex - tex.min()) / (tex.max() - tex.min() + 1e-12)
    img[body] += 0.05 * tex[body]

    mask = np.zeros((z, z), dtype=np.int64)
    for k, (name, cy, cx, ay, ax, val) in enumerate(BTCV_ORGANS):
        jy, jx, ja, jb = subject_jitter[k] + wobble[k]
        ey = max((ay + ja) * axial, 0.008)
        ex = max((ax + jb) * axial, 0.008)
        inside = (((yy - (cy + jy)) / ey) ** 2 + ((xx - (cx + jx)) / ex) ** 2) < 1.0
        inside &= body
        mask[inside] = k + 1
        img[inside] = val + 0.04 * tex[inside]

    img += 0.01 * slice_rng.standard_normal((z, z))
    img = np.clip(img, 0.0, 1.0)
    return BTCVSample(image=img, mask=mask, slice_index=slice_index)
