"""Bounded caches backing the sparsity fast path.

:class:`BackgroundTable` maps a background token's identity — quantized
content digest, leaf size, scene size — to the in-context logits row its
first sighting produced (seeded from a normal forward, never a dedicated
probe), so sub-threshold patches route around the transformer entirely
from their second sighting on.

:class:`SequenceMemo` maps a whole sequence's exact-byte digest to its
stitched probability map: a replay cache, bitwise-identical to
recomputation under the same configuration.

Both are LRU with hit/miss accounting; stored arrays are copied on the
way in and out so cached state can never alias caller buffers.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional, Tuple

import numpy as np

__all__ = ["BackgroundTable", "SequenceMemo"]


class _LRUArrays:
    """Least-recently-used map of hashable keys to defensive array copies."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._items: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._items)

    def get(self, key: Hashable) -> Optional[np.ndarray]:
        hit = self._items.get(key)
        if hit is None:
            self.misses += 1
            return None
        self._items.move_to_end(key)
        self.hits += 1
        return hit.copy()

    def put(self, key: Hashable, value: np.ndarray) -> None:
        self._items[key] = np.asarray(value).copy()
        self._items.move_to_end(key)
        while len(self._items) > self.capacity:
            self._items.popitem(last=False)


class BackgroundTable(_LRUArrays):
    """Digest-keyed cache of per-token logits rows for background patches."""

    @staticmethod
    def key(digest: np.void, size: int, scene: int) -> Tuple[bytes, int, int]:
        """Identity of a background token: content digest + leaf geometry."""
        return (digest.tobytes(), int(size), int(scene))


class SequenceMemo(_LRUArrays):
    """Exact-byte sequence digest -> stitched probability map."""
