"""Table II regeneration: end-to-end speedup at matched quality.

Measured section: real training of APF vs uniform patching on this
substrate. Projected section: the paper's seven rows through the α–β cost
model (encoder-FLOP upper bound).
"""



def test_table2_measured_speedup(once):
    from repro.experiments import run_table2_measured

    r = once(run_table2_measured)
    print("\n" + r.rows())
    # Who wins: APF, on both clocks. Paper: 7.48x / 12.71x at 512^2; at our
    # 64^2 the quadratic term is milder, so we assert factor > 1.5 per epoch
    # and > 1.0 on the same-dice-target clock.
    assert r.speedup_sec_per_image > 1.5
    assert r.speedup_convergence >= 1.0
    # Matched quality: APF dice within 25% relative of uniform or better
    # (paper: equal or better at every resolution).
    assert r.dice_apf > r.dice_uniform * 0.75


def test_table2_projection_all_rows(once):
    from repro.experiments import run_table2_projection

    r = once(run_table2_projection)
    print("\n" + r.rows())
    assert len(r.projection) == 7
    for row in r.projection:
        # The FLOP model upper-bounds the paper's measured speedups.
        assert row.projected_speedup >= row.paper_speedup * 0.9
    assert r.projected_geomean > 4.1  # paper's measured geomean is a floor
