#!/usr/bin/env python
"""Volumetric APF: octree patching of a 3-D CT volume (extension).

The paper patches 2-D slices; its carrier model UNETR is natively 3-D, so
the octree generalization is the natural next step. This example builds a
synthetic CT volume, partitions it adaptively, and shows how the token
reduction compounds in 3-D.

Run:  python examples/volumetric_apf.py
"""

import numpy as np

from repro.data import generate_ct_volume
from repro.models import ViTBackbone
from repro.patching import VolumetricAdaptivePatcher


def main() -> None:
    vol = generate_ct_volume(resolution=64, slices=64, seed=0)
    print(f"volume {vol.volume.shape}, "
          f"{len(np.unique(vol.mask)) - 1} organ classes present")

    patcher = VolumetricAdaptivePatcher(patch_size=4, split_value=8.0)
    detail = patcher.detail_map(vol.volume)
    print(f"detail voxels: {detail.mean():.1%} of the volume")

    seq = patcher(vol.volume)
    uniform = (64 // 4) ** 3
    print(f"uniform 4^3 patches : {uniform}")
    print(f"octree patches      : {len(seq)} "
          f"({uniform / len(seq):.1f}x sequence reduction, "
          f"{(uniform / len(seq)) ** 2:.0f}x attention reduction)")
    print(f"cube-size histogram : "
          f"{dict(zip(*np.unique(seq.sizes, return_counts=True)))}")

    # The flattened 4^3 tokens feed the same transformer backbone unchanged.
    model = ViTBackbone(token_dim=4 ** 3, dim=32, depth=2, heads=2,
                        max_len=len(seq), use_coords=False)
    out = model(seq.tokens()[None].astype(np.float32))
    print(f"ViT over octree tokens: output {out.shape}")

    # Round trip: scatter token means back and compare coarse structure.
    rec = seq.scatter_to_volume(seq.patches)
    err = np.abs(rec - vol.volume).mean()
    print(f"reconstruction MAE at leaf granularity: {err:.4f}")


if __name__ == "__main__":
    main()
