"""HIPT-lite: two-level hierarchical ViT classifier (Chen et al., CVPR'22).

The Table V competitor: HIPT tackles gigapixel images by training a pyramid
of ViTs — a low-level ViT embeds small regions, a high-level ViT aggregates
region embeddings. This is the pattern the paper contrasts with APF ("train
multiple models at different resolutions" vs "one model + preprocessing").

Faithful two-level reduction: a shared region ViT (level 1) embeds each
``region_size``-pixel tile with uniform patches; a global ViT (level 2)
attends over the tile-embedding grid and classifies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from .embedding import PatchEmbedding

__all__ = ["HIPTLite"]


class HIPTLite(nn.Module):
    def __init__(self, image_size: int, channels: int = 3,
                 region_size: int = 16, patch_size: int = 4,
                 dim: int = 48, depth1: int = 2, depth2: int = 2,
                 heads: int = 4, num_classes: int = 6,
                 rng: Optional[np.random.Generator] = None, dtype=np.float32):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        if image_size % region_size:
            raise ValueError(f"region_size {region_size} must divide image "
                             f"size {image_size}")
        if region_size % patch_size:
            raise ValueError(f"patch_size {patch_size} must divide region "
                             f"size {region_size}")
        self.image_size = image_size
        self.region_size = region_size
        self.patch_size = patch_size
        self.channels = channels
        self.regions_per_side = image_size // region_size
        tokens_per_region = (region_size // patch_size) ** 2
        token_dim = channels * patch_size * patch_size
        self.embed1 = PatchEmbedding(token_dim, dim, tokens_per_region,
                                     use_coords=False, rng=rng, dtype=dtype)
        self.level1 = nn.TransformerEncoder(dim, depth1, heads, mlp_ratio=2.0,
                                            rng=rng, dtype=dtype)
        n_regions = self.regions_per_side ** 2
        self.pos2 = nn.Parameter(rng.normal(0, 0.02, size=(n_regions, dim)).astype(dtype))
        self.level2 = nn.TransformerEncoder(dim, depth2, heads, mlp_ratio=2.0,
                                            rng=rng, dtype=dtype)
        self.head = nn.Linear(dim, num_classes, rng=rng, dtype=dtype)
        self.num_classes = num_classes
        self.dtype = dtype

    def _tokenize(self, images: np.ndarray) -> np.ndarray:
        """(B, C, Z, Z) -> (B*R^2, tokens_per_region, token_dim) numpy."""
        b, c, z, _ = images.shape
        r, p = self.region_size, self.patch_size
        nr = z // r
        np_per = r // p
        # (B, C, nr, np_per, p, nr, np_per, p) -> regions x patches.
        x = images.reshape(b, c, nr, np_per, p, nr, np_per, p)
        x = x.transpose(0, 2, 5, 3, 6, 1, 4, 7)  # (B, nr, nr, np, np, C, p, p)
        return x.reshape(b * nr * nr, np_per * np_per, c * p * p)

    def forward(self, images) -> nn.Tensor:
        """(B, C, Z, Z) -> (B, num_classes) logits."""
        imgs = np.asarray(images, dtype=self.dtype)
        b = imgs.shape[0]
        if imgs.shape[2] != self.image_size:
            raise ValueError(f"expected image size {self.image_size}, "
                             f"got {imgs.shape[2]}")
        tokens = self._tokenize(imgs)
        x = self.embed1(tokens)                       # (B*R^2, L1, D)
        x = self.level1(x)
        region_emb = x.mean(axis=1)                   # (B*R^2, D)
        n_regions = self.regions_per_side ** 2
        r = region_emb.reshape(b, n_regions, -1)
        r = r + self.pos2
        r = self.level2(r)
        return self.head(r.mean(axis=1))

    def predict(self, image: np.ndarray) -> int:
        with nn.no_grad():
            logits = self.forward(image[None])
        return int(np.argmax(logits.data[0]))
