"""Token embedding for patch sequences (uniform or adaptive).

The embedding layer is the *only* place APF touches the model stack, and even
here nothing structural changes: tokens are linearly projected exactly as in
ViT. Positional information comes from a learned per-index table (paper
setting — Morton order makes indices spatially meaningful) optionally
augmented with a geometry embedding of each patch's (center, scale), which we
add as an extension and ablate.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .. import nn
from ..patching import PatchSequence

__all__ = ["PatchEmbedding", "collate_sequences"]


def collate_sequences(seqs: Sequence[PatchSequence]):
    """Stack per-image sequences into batch arrays.

    All sequences must share length, patch size, and channel count (use
    ``APFConfig.target_length`` to equalize adaptive lengths).

    Duck-typed over ``tokens()`` / ``coords()`` / ``valid``, so 2-D
    :class:`PatchSequence` and 3-D
    :class:`~repro.patching.volumetric.VolumeSequence` batches collate
    through the same call (their coordinate widths differ: 3 vs 4).

    Returns
    -------
    tokens: (B, L, C*Pm*Pm) float64 — or (B, L, Pm³) for volumes
    coords: (B, L, 3) float64 — or (B, L, 4) for volumes
    valid:  (B, L) bool
    """
    lengths = {len(s) for s in seqs}
    if len(lengths) != 1:
        raise ValueError(f"sequences have mixed lengths {sorted(lengths)}; "
                         "set APFConfig.target_length to batch adaptive sequences")
    tokens = np.stack([s.tokens() for s in seqs])
    coords = np.stack([s.coords() for s in seqs])
    valid = np.stack([s.valid for s in seqs])
    return tokens, coords, valid


class PatchEmbedding(nn.Module):
    """Linear patch projection + positional embeddings.

    Parameters
    ----------
    token_dim:
        Flattened patch length ``C * Pm * Pm``.
    dim:
        Model width.
    max_len:
        Size of the learned positional table (max sequence length).
    use_coords:
        Add a geometry embedding of (cy, cx, log2 size) — APF extension.
    coord_dim:
        Width of the geometry features: 3 for image sequences (default),
        4 for volumetric sequences (cz, cy, cx, log2 size).
    """

    def __init__(self, token_dim: int, dim: int, max_len: int,
                 use_coords: bool = True, coord_dim: int = 3,
                 rng: Optional[np.random.Generator] = None, dtype=np.float32):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.proj = nn.Linear(token_dim, dim, rng=rng, dtype=dtype)
        self.pos = nn.Parameter(
            (rng.normal(0, 0.02, size=(max_len, dim))).astype(dtype))
        self.use_coords = use_coords
        self.coord_proj = (nn.Linear(coord_dim, dim, rng=rng, dtype=dtype)
                           if use_coords else None)
        self.max_len = max_len
        self.dtype = dtype

    def forward(self, tokens, coords=None, valid=None) -> nn.Tensor:
        """Embed (B, L, T) tokens into a (B, L, D) tensor.

        Padding positions (``valid == False``) are zeroed after embedding so
        they contribute nothing to attention values.

        Accepts either raw numpy arrays (eager convenience: cast to the
        model dtype here, ``valid`` as a (B, L) bool mask) or pre-prepared
        :class:`~repro.nn.Tensor` graph inputs (the shape-stable form the
        compiled runtime traces: ``valid`` already a (B, L, 1) float mask).
        """
        b, length, _ = tokens.shape
        if length > self.max_len:
            raise ValueError(f"sequence length {length} exceeds positional "
                             f"table size {self.max_len}")
        if not isinstance(tokens, nn.Tensor):
            tokens = nn.Tensor(tokens.astype(self.dtype))
        x = self.proj(tokens)
        x = x + self.pos[:length]
        if self.use_coords and coords is not None:
            if not isinstance(coords, nn.Tensor):
                coords = nn.Tensor(coords.astype(self.dtype))
            x = x + self.coord_proj(coords)
        if valid is not None:
            if not isinstance(valid, nn.Tensor):
                valid = nn.Tensor(valid.astype(self.dtype)[:, :, None])
            x = x * valid
        return x
