"""Table IV: BTCV multi-organ segmentation (13 classes) on one GPU.

Paper ordering (from scratch): APF-UNETR-2 reaches UNETR-4-level dice
(89.7 vs 89.1) at ~8x less end-to-end time; U-Net is fastest but weakest
(80.2); TransUNet in between; Swin-UNETR tops the chart only thanks to
five-dataset pre-training, which we do not replicate.

For the binary-dice training path used elsewhere in this repo, BTCV masks are
multi-class; here every model trains with the multi-class loss and reports
dice averaged over the 13 organ classes (paper §IV-B convention).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .. import nn
from ..data import NUM_BTCV_CLASSES, SyntheticBTCV, train_val_test_split
from ..metrics import per_class_dice
from ..models import SwinUNETRLite, TransUNetLite, UNet, UNETR2D
from ..patching import AdaptivePatcher, UniformPatcher
from ..train import ImageSegmentationTask, Trainer, UNETRTask, prepare_image
from .common import ExperimentScale, format_table

__all__ = ["Table4Row", "Table4Result", "run_table4"]


@dataclass
class Table4Row:
    model: str
    patch: Optional[int]
    seconds_total: float
    dice: float


@dataclass
class Table4Result:
    rows_: List[Table4Row] = field(default_factory=list)

    def row(self, name: str) -> Table4Row:
        for r in self.rows_:
            if r.model == name:
                return r
        raise KeyError(name)

    def rows(self) -> str:
        base = self.row("APF-UNETR").seconds_total
        return format_table(
            ["model", "patch", "time (s)", "rel. time", "dice %"],
            [[r.model, r.patch if r.patch else "N/A", f"{r.seconds_total:.2f}",
              f"{r.seconds_total / base:.2f}x", f"{r.dice:.1f}"]
             for r in self.rows_])


class _MulticlassUNETRTask(UNETRTask):
    """UNETR over BTCV: multi-class loss + 13-organ mean dice."""

    def __init__(self, model, patcher, num_classes: int):
        super().__init__(model, patcher, channels=1)
        self.num_classes = num_classes

    def batch_loss(self, samples):
        imgs = np.stack([prepare_image(s.image, 1) for s in samples])
        seqs = [self.patcher(prepare_image(s.image, 1).transpose(1, 2, 0))
                for s in samples]
        logits = self.model.forward_sequences(seqs, imgs)
        onehot = np.zeros(logits.shape)
        for i, s in enumerate(samples):
            m = s.mask.astype(int)
            for k in range(self.num_classes):
                onehot[i, k][m == k] = 1.0
        labels = np.stack([s.mask.astype(int) for s in samples])
        return (nn.multiclass_dice_loss(logits, onehot)
                + nn.cross_entropy(logits.transpose(0, 2, 3, 1), labels))

    def evaluate(self, samples):
        scores = []
        for s in samples:
            img = prepare_image(s.image, 1)
            seq = self.patcher(img.transpose(1, 2, 0))
            with nn.no_grad():
                logits = self.model.forward_sequences([seq], img[None]).data[0]
            pred = logits.argmax(axis=0)
            scores.append(np.nanmean(per_class_dice(pred, s.mask.astype(int),
                                                    self.num_classes)))
        return float(np.mean(scores))


def run_table4(scale: Optional[ExperimentScale] = None,
               split_value: float = 2.0) -> Table4Result:
    """Train the five Table IV models on synthetic BTCV."""
    scale = scale or ExperimentScale(resolution=64, n_samples=10, epochs=10,
                                     dim=32, depth=2)
    k = NUM_BTCV_CLASSES
    ds = SyntheticBTCV(scale.resolution, n_subjects=scale.n_samples,
                       base_seed=scale.seed)
    tr_s, va_s, te_s = train_val_test_split(ds, seed=scale.seed)
    from .common import ensure_nonempty_splits
    train, val, test = ensure_nonempty_splits(
        [tr_s[i] for i in range(len(tr_s))],
        [va_s[i] for i in range(len(va_s))],
        [te_s[i] for i in range(len(te_s))])
    result = Table4Result()
    rng = lambda: np.random.default_rng(scale.seed)

    def run(task, name, patch):
        trainer = Trainer(task, nn.AdamW(task.parameters(), lr=scale.lr),
                          batch_size=scale.batch_size, seed=scale.seed)
        hist = trainer.fit(train, val, epochs=scale.epochs)
        dice = task.evaluate(test)
        result.rows_.append(Table4Row(name, patch,
                                      float(np.sum(hist.epoch_seconds)), dice))

    run(ImageSegmentationTask(UNet(channels=1, out_channels=k, widths=(8, 16),
                                   rng=rng()), channels=1, multiclass=k),
        "U-Net", None)
    run(ImageSegmentationTask(
        TransUNetLite(channels=1, out_channels=k, stem_ch=8, dim=scale.dim,
                      depth=1, heads=scale.heads,
                      max_hw=max((scale.resolution // 4) ** 2, 16), rng=rng()),
        channels=1, multiclass=k), "TransUNet", None)
    run(ImageSegmentationTask(
        SwinUNETRLite(channels=1, out_channels=k, patch_size=2, dim=8,
                      heads=2, window=4, rng=rng()),
        channels=1, multiclass=k), "Swin-UNETR", 4)

    p_uni = 4
    run(_MulticlassUNETRTask(
        UNETR2D(patch_size=p_uni, channels=1, dim=scale.dim, depth=scale.depth,
                heads=scale.heads, out_channels=k, decoder_ch=8,
                max_len=(scale.resolution // p_uni) ** 2, rng=rng()),
        UniformPatcher(p_uni), k), "UNETR", p_uni)

    p_apf = 2
    run(_MulticlassUNETRTask(
        UNETR2D(patch_size=p_apf, channels=1, dim=scale.dim, depth=scale.depth,
                heads=scale.heads, out_channels=k, decoder_ch=8,
                max_len=(scale.resolution // p_apf) ** 2, rng=rng()),
        AdaptivePatcher(patch_size=p_apf, split_value=split_value,
                        target_length=max((scale.resolution // p_apf) ** 2 // 4, 8),
                        seed=scale.seed), k), "APF-UNETR", p_apf)
    return result
