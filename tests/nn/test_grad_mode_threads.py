"""Grad mode must be thread-local: ``no_grad`` in a pipeline worker thread
cannot disable tape construction in the training thread (ISSUE 3
satellite — ``_GradMode.enabled`` used to be process-global)."""

import threading
import time

import numpy as np

from repro import nn


def test_no_grad_in_worker_does_not_leak_to_other_threads():
    inside = threading.Event()
    release = threading.Event()
    states = {}

    def worker():
        with nn.no_grad():
            states["worker"] = nn.is_grad_enabled()
            inside.set()
            release.wait(timeout=10)
        states["worker_after"] = nn.is_grad_enabled()

    t = threading.Thread(target=worker)
    t.start()
    assert inside.wait(timeout=10)
    # Worker sits inside no_grad right now; this thread must be unaffected.
    assert nn.is_grad_enabled()
    x = nn.Tensor(np.ones(3), requires_grad=True)
    y = (x * 2.0).sum()
    assert y.requires_grad, "tape construction was disabled by another thread"
    release.set()
    t.join()
    assert states["worker"] is False
    assert states["worker_after"] is True
    y.backward()
    np.testing.assert_array_equal(x.grad, 2.0 * np.ones(3))


def test_threads_start_with_grad_enabled():
    states = {}

    def probe():
        states["fresh"] = nn.is_grad_enabled()

    with nn.no_grad():
        # A thread spawned while this thread is inside no_grad still starts
        # with gradients enabled (per-thread default).
        t = threading.Thread(target=probe)
        t.start()
        t.join()
    assert states["fresh"] is True


def test_concurrent_no_grad_and_training_tapes():
    stop = threading.Event()
    errors = []

    def no_grad_loop():
        try:
            while not stop.is_set():
                with nn.no_grad():
                    t = nn.Tensor(np.ones(4), requires_grad=True)
                    assert not (t * 3.0).requires_grad
                    time.sleep(0)
        except Exception as exc:    # pragma: no cover - failure path
            errors.append(exc)

    worker = threading.Thread(target=no_grad_loop)
    worker.start()
    try:
        for _ in range(50):
            x = nn.Tensor(np.ones(4), requires_grad=True)
            y = (x * 2.0 + 1.0).sum()
            assert y.requires_grad
            y.backward()
            np.testing.assert_array_equal(x.grad, 2.0 * np.ones(4))
    finally:
        stop.set()
        worker.join()
    assert not errors
