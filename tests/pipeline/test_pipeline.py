"""PatchPipeline: cache behaviour, worker determinism, collation, and the
end-to-end dataset→loader→trainer pathway."""

import numpy as np
import pytest

from repro import nn
from repro.data import DataLoader, SyntheticPAIP, generate_wsi
from repro.models import ViTSegmenter
from repro.patching import LRUPatchCache
from repro.pipeline import CollatedBatch, PatchPipeline, collate_batch
from repro.train import TokenSegmentationTask, Trainer


def images(res, n, start=0):
    return [generate_wsi(res, seed=start + s).image for s in range(n)]


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUPatchCache(max_items=2)
        cache.put("a", "A")
        cache.put("b", "B")
        assert cache.get("a") == "A"   # refreshes a
        cache.put("c", "C")            # evicts b (least recently used)
        assert cache.get("b") is None
        assert cache.get("a") == "A"
        assert cache.get("c") == "C"
        assert cache.evictions == 1

    def test_get_or_build_lru(self):
        cache = LRUPatchCache(max_items=1)
        cache.get_or_build("x", lambda: 1)
        cache.get_or_build("y", lambda: 2)
        assert cache.evictions == 1
        assert cache.get_or_build("y", lambda: 3) == 2
        assert cache.hits == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            LRUPatchCache(max_items=0)


class TestPipelineCache:
    def test_hits_on_repeat_keys(self):
        pipe = PatchPipeline(patch_size=4, split_value=2.0, cache_items=8)
        imgs = images(64, 4)
        pipe.process(imgs, keys=[0, 1, 2, 3])
        pipe.process(imgs, keys=[0, 1, 2, 3])
        assert pipe.stats["misses"] == 4
        assert pipe.stats["hits"] == 4
        assert pipe.stats["hit_rate"] == pytest.approx(0.5)
        assert pipe.stats["build_seconds"] > 0

    def test_content_keys_without_ids(self):
        pipe = PatchPipeline(patch_size=4, split_value=2.0, cache_items=8)
        imgs = images(64, 2)
        pipe.process(imgs)
        pipe.process(imgs)
        assert pipe.stats["hits"] == 2

    def test_cached_results_identical(self):
        pipe = PatchPipeline(patch_size=4, split_value=2.0, cache_items=8)
        imgs = images(64, 3)
        first = pipe.process(imgs, keys=[0, 1, 2])
        second = pipe.process(imgs, keys=[0, 1, 2])
        for a, b in zip(first, second):
            assert a is b   # cache returns the same object

    def test_cache_disabled(self):
        pipe = PatchPipeline(patch_size=4, split_value=2.0, cache_items=0)
        imgs = images(64, 2)
        pipe.process(imgs)
        assert pipe.stats == {}

    def test_eviction_under_capacity_pressure(self):
        pipe = PatchPipeline(patch_size=4, split_value=2.0, cache_items=2)
        imgs = images(64, 4)
        pipe.process(imgs, keys=[0, 1, 2, 3])
        assert pipe.stats["evictions"] == 2
        assert pipe.stats["items"] == 2

    def test_warm_precomputes_dataset(self):
        pipe = PatchPipeline(patch_size=4, split_value=2.0, target_length=64,
                             cache_items=16)
        ds = SyntheticPAIP(64, 5)
        stats = pipe.warm(ds, batch_size=2)
        assert stats["misses"] == 5
        # A full epoch through the loader is now all hits.
        loader = DataLoader(ds, batch_size=2, pipeline=pipe)
        for _ in loader:
            pass
        assert pipe.stats["hits"] >= 5


class TestKeying:
    """Content-hash vs caller-id cache keying must agree on results and
    differ only in how entries are addressed."""

    def test_content_and_id_keying_identical_sequences(self):
        imgs = images(64, 3)
        by_content = PatchPipeline(patch_size=4, split_value=2.0,
                                   cache_items=8)
        by_id = PatchPipeline(patch_size=4, split_value=2.0, cache_items=8)
        a = by_content.process(imgs)                   # content hashes
        b = by_id.process(imgs, keys=[10, 11, 12])     # caller ids
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.patches, y.patches)
            np.testing.assert_array_equal(x.ys, y.ys)

    def test_content_keying_dedupes_identical_images(self):
        img = images(64, 1)[0]
        pipe = PatchPipeline(patch_size=4, split_value=2.0, cache_items=8)
        pipe.process([img])
        # A byte-identical copy hits the cache — content addressing, not
        # object identity.
        pipe.process([img.copy()])
        assert pipe.stats["misses"] == 1
        assert pipe.stats["hits"] == 1

    def test_id_keying_trusts_caller_over_content(self):
        imgs = images(64, 2)
        pipe = PatchPipeline(patch_size=4, split_value=2.0, cache_items=8)
        first = pipe.process([imgs[0]], keys=[0])
        # Same key, different image: the cache serves the keyed entry.
        second = pipe.process([imgs[1]], keys=[0])
        assert second[0] is first[0]
        assert pipe.stats["hits"] == 1

    def test_key_seed_stability_across_types(self):
        from repro.pipeline.engine import _key_seed
        assert _key_seed(42) == 42
        assert _key_seed(-7) == 7
        # Non-int keys hash identically across processes (blake2b, not the
        # salted builtin) — same key, same seed, every run.
        assert _key_seed("subject-3/slice-9") == _key_seed("subject-3/slice-9")
        assert _key_seed(("a", 1)) != _key_seed(("a", 2))

    def test_content_keys_differ_for_different_images(self):
        from repro.pipeline.engine import _content_key
        a, b = images(64, 2)
        assert _content_key(a) != _content_key(b)
        assert _content_key(a) == _content_key(a.copy())


class TestWorkerDeterminism:
    @pytest.mark.parametrize("workers", [0, 2, 4])
    def test_worker_count_invariant(self, workers):
        imgs = images(64, 7)
        base = PatchPipeline(patch_size=4, split_value=2.0, cache_items=0,
                             target_length=64)
        pipe = PatchPipeline(patch_size=4, split_value=2.0, cache_items=0,
                             target_length=64, workers=workers)
        a = base.collate(imgs, epoch=2)
        b = pipe.collate(imgs, epoch=2)
        np.testing.assert_array_equal(a.tokens, b.tokens)
        np.testing.assert_array_equal(a.valid, b.valid)
        np.testing.assert_array_equal(a.coords, b.coords)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_process_executor_matches(self, workers):
        imgs = images(64, 5)
        base = PatchPipeline(patch_size=4, split_value=2.0, cache_items=0)
        procs = PatchPipeline(patch_size=4, split_value=2.0, cache_items=0,
                              workers=workers, executor="process")
        for a, b in zip(base.process(imgs), procs.process(imgs)):
            np.testing.assert_array_equal(a.patches, b.patches)
            np.testing.assert_array_equal(a.ys, b.ys)

    def test_drops_invariant_to_batch_composition(self):
        # Same key + epoch => same drop pattern regardless of where the
        # image lands in a batch or how large the batch is.
        imgs = images(64, 3, start=40)
        pipe = PatchPipeline(patch_size=2, split_value=0.5, target_length=12,
                             cache_items=8)
        full = pipe.collate(imgs, keys=[10, 11, 12], epoch=1)
        solo = pipe.collate([imgs[2]], keys=[12], epoch=1)
        np.testing.assert_array_equal(full.tokens[2], solo.tokens[0])
        reordered = pipe.collate(imgs[::-1], keys=[12, 11, 10], epoch=1)
        np.testing.assert_array_equal(full.tokens[2], reordered.tokens[0])

    def test_epoch_changes_drops_deterministically(self):
        imgs = images(64, 3, start=20)
        pipe = PatchPipeline(patch_size=2, split_value=0.5, target_length=12,
                             cache_items=8)
        e0 = pipe.collate(imgs, keys=[0, 1, 2], epoch=0)
        e0_again = pipe.collate(imgs, keys=[0, 1, 2], epoch=0)
        e1 = pipe.collate(imgs, keys=[0, 1, 2], epoch=1)
        np.testing.assert_array_equal(e0.tokens, e0_again.tokens)
        assert not np.array_equal(e0.tokens, e1.tokens)

    def test_invalid_options(self):
        with pytest.raises(ValueError):
            PatchPipeline(workers=-1)
        with pytest.raises(ValueError):
            PatchPipeline(executor="mpi")


class TestCollation:
    def test_shapes_and_mask(self):
        imgs = images(64, 5)
        pipe = PatchPipeline(patch_size=4, split_value=2.0, target_length=32,
                             cache_items=0)
        batch = pipe.collate(imgs)
        assert isinstance(batch, CollatedBatch)
        assert batch.tokens.shape == (5, 32, 3 * 16)
        assert batch.valid.shape == (5, 32)
        assert batch.coords.shape == (5, 32, 3)
        assert batch.batch_size == 5 and batch.length == 32
        assert len(batch) == 5
        # Padded slots carry zero tokens.
        assert np.all(batch.tokens[~batch.valid] == 0.0)

    def test_collate_requires_length(self):
        pipe = PatchPipeline(patch_size=4, split_value=2.0, cache_items=0)
        with pytest.raises(ValueError):
            pipe.collate(images(64, 1))

    def test_collate_batch_rejects_mixed_lengths(self):
        pipe = PatchPipeline(patch_size=4, split_value=1.0, cache_items=0)
        seqs = pipe.process(images(64, 2))
        if len(seqs[0]) != len(seqs[1]):
            with pytest.raises(ValueError):
                collate_batch(seqs)

    def test_channel_adaptation(self):
        pipe = PatchPipeline(patch_size=4, split_value=2.0, target_length=32,
                             cache_items=0, channels=1)
        batch = pipe.collate(images(64, 2))
        assert batch.tokens.shape[2] == 16    # 1 channel * 4 * 4


class TestEndToEnd:
    def test_loader_yields_collated_batches(self):
        ds = SyntheticPAIP(64, 4)
        pipe = PatchPipeline(patch_size=4, split_value=2.0, target_length=64,
                             cache_items=16, channels=1)
        loader = DataLoader(ds, batch_size=2, pipeline=pipe)
        batches = list(loader)
        assert len(batches) == 2
        assert all(isinstance(b, CollatedBatch) for b in batches)
        assert batches[0].samples is not None
        # Second epoch: all patching served from cache.
        misses = pipe.stats["misses"]
        list(loader)
        assert pipe.stats["misses"] == misses

    def test_trainer_consumes_pipeline_loader(self):
        ds = SyntheticPAIP(64, 4)
        pipe = PatchPipeline(patch_size=4, split_value=2.0, target_length=96,
                             cache_items=16, channels=1)
        loader = DataLoader(ds, batch_size=2, shuffle=True, pipeline=pipe)
        model = ViTSegmenter(patch_size=4, channels=1, dim=16, depth=1,
                             heads=2, max_len=128)
        task = TokenSegmentationTask(model, pipe, channels=1)
        trainer = Trainer(task, nn.SGD(task.parameters(), lr=0.05))
        history = trainer.fit_loader(loader, [ds[0]], epochs=2)
        assert history.epochs == 2
        assert all(np.isfinite(v) for v in history.train_loss)
        # Patching ran once per train image (4, keyed by dataset index) plus
        # once for the val sample (content-hash key) — not once per epoch.
        assert pipe.stats["misses"] == 5
        assert pipe.stats["hits"] >= 4

    def test_collated_loss_matches_finiteness(self):
        ds = SyntheticPAIP(64, 2)
        pipe = PatchPipeline(patch_size=4, split_value=2.0, target_length=64,
                             cache_items=4, channels=1)
        model = ViTSegmenter(patch_size=4, channels=1, dim=16, depth=1,
                             heads=2, max_len=128)
        task = TokenSegmentationTask(model, pipe, channels=1)
        batch = pipe.collate_samples([ds[0], ds[1]])
        loss = task.batch_loss(batch)
        assert np.isfinite(float(loss.data))

    def test_collated_loss_requires_samples(self):
        pipe = PatchPipeline(patch_size=4, split_value=2.0, target_length=64,
                             cache_items=0, channels=1)
        model = ViTSegmenter(patch_size=4, channels=1, dim=16, depth=1,
                             heads=2, max_len=128)
        task = TokenSegmentationTask(model, pipe, channels=1)
        batch = pipe.collate(images(64, 2))
        with pytest.raises(ValueError):
            task.batch_loss(batch)

    def test_train_epoch_loader_empty_raises(self):
        pipe = PatchPipeline(patch_size=4, split_value=2.0, target_length=64,
                             cache_items=0, channels=1)
        model = ViTSegmenter(patch_size=4, channels=1, dim=16, depth=1,
                             heads=2, max_len=128)
        task = TokenSegmentationTask(model, pipe, channels=1)
        trainer = Trainer(task, nn.SGD(task.parameters(), lr=0.05))
        with pytest.raises(ValueError):
            trainer.train_epoch_loader([])
