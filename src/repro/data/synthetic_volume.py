"""Synthetic 3-D CT-like volume generator for the volumetric APF extension.

Stacks the per-slice BTCV generator along the axial direction with a shared
subject pose, producing a (S, Z, Z) volume whose organs shrink away from
their central slice — enough structure for the octree to exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .synthetic_btcv import generate_ct_slice

__all__ = ["CTVolume", "generate_ct_volume"]


@dataclass
class CTVolume:
    """A (S, Z, Z) synthetic scan with aligned integer masks."""

    volume: np.ndarray
    mask: np.ndarray
    subject: int

    @property
    def image(self) -> np.ndarray:
        """Alias for :attr:`volume` — lets volume samples flow through the
        sample-generic plumbing (``DataLoader``/``PatchPipeline``/tasks)."""
        return self.volume


def generate_ct_volume(resolution: int, slices: int, seed: int) -> CTVolume:
    """Generate a correlated slice stack. ``slices`` need not equal
    ``resolution``; pass equal values for the cubic volumes the octree
    patcher requires."""
    if slices < 1:
        raise ValueError("slices must be >= 1")
    imgs, masks = [], []
    half = slices // 2
    for s in range(slices):
        sl = generate_ct_slice(resolution, seed=seed, slice_index=s - half)
        imgs.append(sl.image)
        masks.append(sl.mask)
    return CTVolume(np.stack(imgs), np.stack(masks), subject=seed)
