"""Synthetic PAIP-like whole-slide pathology image generator.

The real PAIP 2019 dataset (liver-cancer WSIs up to ~64K^2) is not available
offline; this generator produces procedural stand-ins with the statistical
property APF exploits: *detail is spatially sparse* — smooth glass background,
textured tissue, and lesions whose sharp irregular boundaries concentrate the
Canny edge mass. Ground-truth lesion masks are exact by construction.

Six "organ" classes (paper Table V divides PAIP by organ) modulate the tissue
tint and texture frequency so a classifier has real signal to learn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import ndimage

__all__ = ["PAIPSample", "generate_wsi", "NUM_ORGAN_CLASSES"]

NUM_ORGAN_CLASSES = 6

#: Per-organ (tint RGB, lesion scale divisor, lesion prevalence). Real PAIP
#: organs differ in *morphology*, not palette: H&E staining gives every organ
#: a similar pink-violet tint. The synthetic stand-ins therefore share one
#: tint and encode the class in lesion morphology: organ 0 grows a few large
#: lesions, organ 5 many tiny specks (sigma = Z / divisor). Total lesion area
#: is matched across organs, so only the *fine-scale* structure carries the
#: class — a signal that survives small patches but is destroyed by the area
#: downscaling that enormous patches imply (exactly what Table V measures).
_ORGAN_PARAMS = [
    ((0.80, 0.54, 0.66), 5.0, 0.50),   # organ 0: few large lesions
    ((0.80, 0.54, 0.66), 8.0, 0.50),
    ((0.80, 0.54, 0.66), 12.0, 0.50),
    ((0.80, 0.54, 0.66), 18.0, 0.50),
    ((0.80, 0.54, 0.66), 27.0, 0.50),
    ((0.80, 0.54, 0.66), 40.0, 0.50),  # organ 5: many tiny specks
]


@dataclass
class PAIPSample:
    """One synthetic whole-slide image.

    Attributes
    ----------
    image:
        (Z, Z, 3) float64 in [0, 1].
    mask:
        (Z, Z) float64 in {0, 1}: lesion segmentation ground truth.
    organ:
        Class label in [0, 6) for the Table V classification task.
    """

    image: np.ndarray
    mask: np.ndarray
    organ: int


def _smooth_noise(rng: np.random.Generator, z: int, sigma: float) -> np.ndarray:
    """Unit-normalized Gaussian-filtered white noise."""
    n = ndimage.gaussian_filter(rng.standard_normal((z, z)), sigma, mode="reflect")
    lo, hi = n.min(), n.max()
    return (n - lo) / (hi - lo + 1e-12)


def generate_wsi(resolution: int, seed: int, organ: Optional[int] = None) -> PAIPSample:
    """Generate one synthetic WSI at ``resolution`` x ``resolution``.

    Deterministic per ``(resolution, seed, organ)``.
    """
    if resolution < 32:
        raise ValueError(f"resolution must be >= 32, got {resolution}")
    rng = np.random.default_rng(np.random.SeedSequence([resolution, seed, 0xA1]))
    if organ is None:
        organ = int(rng.integers(0, NUM_ORGAN_CLASSES))
    if not 0 <= organ < NUM_ORGAN_CLASSES:
        raise ValueError(f"organ must be in [0, {NUM_ORGAN_CLASSES}), got {organ}")
    tint, lesion_div, prevalence = _ORGAN_PARAMS[organ]
    z = resolution

    # 1. Tissue silhouette: one big smooth blob covering ~40-60% of the slide.
    tissue_field = _smooth_noise(rng, z, sigma=z / 6.0)
    tissue = tissue_field > np.quantile(tissue_field, 0.45)
    # Remove small islands so the background is genuinely flat.
    tissue = ndimage.binary_opening(tissue, structure=np.ones((3, 3)))

    # 2. Tissue texture: cell-level grain, identical statistics across organs
    # (class-irrelevant by construction).
    tex = _smooth_noise(rng, z, sigma=max(z / 16.0, 1.0))

    # 3. Lesion: thresholded noise *inside* tissue whose correlation length is
    # the organ-class signal (sigma = Z / lesion_div): organ 0 gives a few
    # large lesions, organ 5 many small specks. The total lesion area is the
    # same quantile for all organs, so only the morphology differs. The
    # irregular boundaries are the Canny-visible structure APF keys on.
    lesion_field = _smooth_noise(rng, z, sigma=max(z / lesion_div, 1.2))
    thr = np.quantile(lesion_field[tissue], 1.0 - 0.22 * prevalence) if tissue.any() else 1.1
    lesion = (lesion_field > thr) & tissue

    # 4. Intralesional architecture: a fine stripe pattern (wavelength ~4 px)
    # whose *orientation* also identifies the organ (0°, 30°, ..., 150°) —
    # the kind of cellular-arrangement signal pathologists actually read.
    # Wavelength-4 stripes survive 2-4 px patches but cancel under the area
    # downscaling that enormous uniform patches force.
    theta = organ * np.pi / NUM_ORGAN_CLASSES
    yy, xx = np.mgrid[0:z, 0:z]
    stripes = 0.5 + 0.5 * np.sin(2 * np.pi * (xx * np.cos(theta)
                                              + yy * np.sin(theta)) / 4.0)

    # 5. Compose the RGB image: pale glass background, tinted tissue,
    #    darker high-contrast lesion with the striped architecture.
    img = np.full((z, z, 3), 0.93)
    for c in range(3):
        channel = img[:, :, c]
        channel[tissue] = tint[c] * (0.55 + 0.45 * tex[tissue])
        channel[lesion] = tint[c] * (0.15 + 0.25 * tex[lesion]
                                     + 0.30 * stripes[lesion])
    # Mild sensor noise keeps the background from being pathologically uniform
    # without adding Canny-visible structure.
    img += 0.004 * rng.standard_normal((z, z, 3))
    img = np.clip(img, 0.0, 1.0)

    return PAIPSample(image=img, mask=lesion.astype(np.float64), organ=organ)
