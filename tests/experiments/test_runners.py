"""Smoke + shape tests for the per-table/figure experiment runners.

Full-scale assertions live in benchmarks/; here every runner is exercised at
minimum scale to pin interfaces and basic invariants.
"""

import numpy as np
import pytest

from repro.experiments import (ExperimentScale, geomean, run_fig1, run_fig2,
                               run_fig3, run_fig4_models,
                               run_fig4_patch_sweep, run_overhead,
                               run_table2_measured, run_table2_projection,
                               run_table3, run_table4, run_table5)

TINY = ExperimentScale(resolution=32, n_samples=6, epochs=2, dim=16, depth=1,
                       heads=2, batch_size=2)


class TestGeomean:
    def test_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([])


class TestFig1:
    def test_reduction_positive(self):
        r = run_fig1(resolution=64, n_images=2)
        assert r.uniform_patches == (64 // 4) ** 2
        assert r.adaptive_patches_mean < r.uniform_patches
        assert r.sequence_reduction > 1.0
        assert r.attention_reduction == pytest.approx(r.sequence_reduction ** 2)
        assert "uniform patches" in r.rows()


class TestFig3:
    def test_split_sweep_shapes(self):
        r = run_fig3(resolution=64, n_images=4, split_values=(2.0, 8.0, 32.0))
        assert len(r.avg_patch_size) == 3
        # Larger v → coarser patches, shorter sequences.
        assert r.avg_patch_size == sorted(r.avg_patch_size)
        assert r.avg_seq_length == sorted(r.avg_seq_length, reverse=True)
        assert -1.0 <= r.linearity_r2() <= 1.0
        assert "split value" in r.rows()

    def test_histograms_cover_lengths(self):
        r = run_fig3(resolution=64, n_images=2, split_values=(4.0,))
        total = sum(r.patch_histograms[0].values())
        assert total == sum(r.seq_length_samples[0])


class TestTable2:
    def test_measured_interface(self):
        r = run_table2_measured(TINY)
        assert r.sec_per_image_apf > 0
        assert r.sec_per_image_uniform > 0
        assert r.speedup_sec_per_image == pytest.approx(
            r.sec_per_image_uniform / r.sec_per_image_apf)
        assert "speedup" in r.rows()

    def test_projection_has_all_paper_rows(self):
        r = run_table2_projection()
        assert len(r.projection) == 7
        assert {row.resolution for row in r.projection} == \
            {512, 1024, 4096, 8192, 16384, 32768, 65536}
        # Sequence reduction means APF always projected faster.
        assert all(row.projected_speedup > 1 for row in r.projection)
        assert r.projected_geomean > 1
        assert "model x" in r.rows()


class TestTable3:
    def test_rows_complete(self):
        r = run_table3(TINY, apf_patches=(4,), uniform_patches=(4,))
        names = [row.model for row in r.rows_]
        assert any(n.startswith("APF") for n in names)
        assert "TransUNet" in names and "U-Net" in names
        assert np.isfinite(r.dice_improvement)
        assert np.isfinite(r.transformer_improvement)
        assert len(r.equal_cost_pairs()) >= 1
        assert "dice %" in r.rows()

    def test_unetr_carrier(self):
        r = run_table3(TINY, apf_patches=(4,), uniform_patches=(4,),
                       carrier="unetr")
        assert any("UNETR" in row.model for row in r.rows_)


class TestTable4:
    def test_rows_and_relative_time(self):
        r = run_table4(TINY)
        names = {row.model for row in r.rows_}
        assert names == {"U-Net", "TransUNet", "Swin-UNETR", "UNETR",
                         "APF-UNETR"}
        assert all(row.seconds_total > 0 for row in r.rows_)
        assert all(0 <= row.dice <= 100 for row in r.rows_)
        assert "rel. time" in r.rows()

    def test_missing_row_raises(self):
        r = run_table4(TINY)
        with pytest.raises(KeyError):
            r.row("nope")


class TestTable5:
    def test_rows_and_accuracies(self):
        r = run_table5(ExperimentScale(resolution=32, epochs=2, dim=16,
                                       depth=1, heads=2, batch_size=6,
                                       lr=1e-2),
                       per_class_train=1, per_class_test=1, big_patch=8,
                       small_patch=4)
        assert [row.model for row in r.rows_] == ["ViT", "HIPT", "APF-ViT"]
        for row in r.rows_:
            assert 0 <= row.accuracy <= 100
        assert r.acc("ViT") == r.rows_[0].accuracy
        with pytest.raises(KeyError):
            r.acc("nope")


class TestFig4:
    def test_models_panel(self):
        r = run_fig4_models(TINY)
        assert set(r.histories) == {"U-Net", "UNETR-8", "APF-UNETR-2"}
        for h in r.histories.values():
            assert h.epochs == TINY.epochs
        assert np.isfinite(r.stability("U-Net"))
        assert "final val loss" in r.rows()

    def test_patch_sweep_panel(self):
        r = run_fig4_patch_sweep(TINY, patches=(4, 8))
        assert set(r.histories) == {"UNETR-4", "UNETR-8"}


class TestFig2:
    def test_previews_and_artifacts(self, tmp_path):
        r = run_fig2(TINY, artifact_dir=str(tmp_path))
        assert set(r.dice) == {"GroundTruth", "TransUNet", "UNETR",
                               "APF-UNETR"}
        assert r.dice["GroundTruth"] == 100.0
        assert len(r.artifact_paths) == 3
        for p in r.artifact_paths:
            with open(p, "rb") as f:
                assert f.read(2) == b"P5"
        assert "#" in r.previews["GroundTruth"] or "." in r.previews["GroundTruth"]


class TestOverhead:
    def test_negligible_claim(self):
        r = run_overhead(resolutions=(32, 64), n_images=2)
        assert len(r.preprocess_seconds) == 2
        assert all(t > 0 for t in r.preprocess_seconds)
        # §IV-G.3: preprocessing ≪ training. Generous bound for CI noise.
        assert r.overhead_fraction < 0.5
        assert "resolution" in r.rows()
