"""Tests for data-parallel simulation: exact equivalence with single-process
training is the load-bearing property."""

import numpy as np
import pytest

from repro import nn
from repro.data import generate_wsi
from repro.distributed import DataParallelSimulator
from repro.models import ViTSegmenter
from repro.patching import UniformPatcher
from repro.train import TokenSegmentationTask


def make_task(seed=0, dtype=np.float64):
    model = ViTSegmenter(patch_size=8, channels=1, dim=16, depth=1, heads=2,
                         max_len=32, rng=np.random.default_rng(seed), dtype=dtype)
    return TokenSegmentationTask(model, UniformPatcher(8), channels=1)


def samples(n=4, z=32):
    return [generate_wsi(z, seed=i) for i in range(n)]


class _DecomposableTask:
    """Tiny regression task whose loss is a per-sample mean, so the
    full-batch gradient equals the weighted mean of shard gradients —
    the setting in which synchronous DP is *exactly* single-process SGD."""

    def __init__(self, seed=0):
        rng = np.random.default_rng(seed)
        self.w = nn.Parameter(rng.normal(size=(8, 8)))

    def parameters(self):
        return [self.w]

    def batch_loss(self, batch):
        xs = np.stack([b[0] for b in batch])
        ys = np.stack([b[1] for b in batch])
        pred = nn.Tensor(xs) @ self.w
        diff = pred - nn.Tensor(ys)
        return (diff * diff).mean()


def regression_batch(n, seed=0):
    rng = np.random.default_rng(seed)
    return [(rng.normal(size=8), rng.normal(size=8)) for _ in range(n)]


class TestDataParallelExactness:
    def test_matches_single_process_sgd_decomposable_loss(self):
        batch = regression_batch(4)
        t1 = _DecomposableTask(seed=7)
        opt1 = nn.SGD(t1.parameters(), lr=0.05)
        opt1.zero_grad()
        loss = t1.batch_loss(batch)
        loss.backward()
        opt1.step()
        ref = t1.w.data.copy()

        t2 = _DecomposableTask(seed=7)
        sim = DataParallelSimulator(t2, nn.SGD(t2.parameters(), lr=0.05),
                                    world_size=4)
        report = sim.step(batch)
        np.testing.assert_allclose(t2.w.data, ref, rtol=1e-12, atol=1e-14)
        assert report.loss == pytest.approx(float(loss.data), rel=1e-12)

    def test_uneven_shards_still_exact(self):
        batch = regression_batch(5, seed=1)  # shards of 3 and 2
        t1 = _DecomposableTask(seed=3)
        opt1 = nn.SGD(t1.parameters(), lr=0.05)
        opt1.zero_grad()
        t1.batch_loss(batch).backward()
        opt1.step()
        ref = t1.w.data.copy()

        t2 = _DecomposableTask(seed=3)
        sim = DataParallelSimulator(t2, nn.SGD(t2.parameters(), lr=0.05),
                                    world_size=2)
        sim.step(batch)
        np.testing.assert_allclose(t2.w.data, ref, rtol=1e-12, atol=1e-14)

    def test_dice_loss_dp_close_but_reduced_exactly(self):
        # Dice is not decomposable: DP averages shard gradients (what real
        # DDP does). Verify DP equals the manual weighted-average reference.
        batch = samples(4)
        t1 = make_task(seed=7)
        params1 = t1.parameters()
        grads = None
        sizes = [2, 2]
        for shard in (batch[:2], batch[2:]):
            for p in params1:
                p.grad = None
            t1.batch_loss(shard).backward()
            shard_grads = [p.grad.copy() for p in params1]
            if grads is None:
                grads = [g * (2 / 4) for g in shard_grads]
            else:
                grads = [a + g * (2 / 4) for a, g in zip(grads, shard_grads)]
        ref = [p.data - 0.05 * g for p, g in zip(params1, grads)]

        t2 = make_task(seed=7)
        sim = DataParallelSimulator(t2, nn.SGD(t2.parameters(), lr=0.05),
                                    world_size=2)
        sim.step(batch)
        for a, b in zip(ref, [p.data for p in t2.parameters()]):
            np.testing.assert_allclose(a, b, rtol=1e-7, atol=1e-9)

    def test_batch_smaller_than_world_rejected(self):
        t = make_task()
        sim = DataParallelSimulator(t, nn.SGD(t.parameters(), lr=0.1),
                                    world_size=8)
        with pytest.raises(ValueError):
            sim.step(samples(2))

    def test_report_fields(self):
        t = make_task()
        sim = DataParallelSimulator(t, nn.SGD(t.parameters(), lr=0.1),
                                    world_size=2)
        r = sim.step(samples(2))
        assert r.measured_compute_seconds > 0
        assert r.simulated_comm_seconds > 0
        assert r.comm_bytes_per_rank > 0
        assert r.simulated_step_seconds == pytest.approx(
            r.measured_compute_seconds + r.simulated_comm_seconds)

    def test_world1_no_comm(self):
        t = make_task()
        sim = DataParallelSimulator(t, nn.SGD(t.parameters(), lr=0.1),
                                    world_size=1)
        r = sim.step(samples(2))
        assert r.simulated_comm_seconds == 0.0
