"""Task adapters: bind (model, patcher, loss) triples behind one interface.

The trainer only needs ``batch_loss`` / ``val_loss`` / ``evaluate``; these
adapters encode how each architecture in the zoo consumes a sample —
token-level supervision for pure ViTs, full-resolution supervision for
decoder models, cross-entropy for classifiers. One UNETR can thereby be
trained with uniform *or* adaptive patching by swapping only the patcher
(Algorithm 1's outer loop).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .. import nn
from ..metrics import dice_score, per_class_dice, top1_accuracy
from ..patching import AdaptivePatcher, PatchSequence

__all__ = ["TokenSegmentationTask", "VolumeSegmentationTask",
           "ImageSegmentationTask", "UNETRTask",
           "SequenceClassificationTask", "ImageClassificationTask",
           "prepare_image"]


def prepare_image(image: np.ndarray, channels: int) -> np.ndarray:
    """Convert a sample image to (C, Z, Z) with the model's channel count."""
    img = np.asarray(image, dtype=np.float64)
    if img.ndim == 2:
        img = img[:, :, None]
    if img.shape[2] != channels:
        if channels == 1:
            img = img.mean(axis=2, keepdims=True)
        elif img.shape[2] == 1:
            img = np.repeat(img, channels, axis=2)
        else:
            raise ValueError(f"cannot adapt {img.shape[2]} channels to {channels}")
    return img.transpose(2, 0, 1)


def _patcher_image(image: np.ndarray, channels: int) -> np.ndarray:
    """(Z, Z[, C]) view fed to the patcher, channel-adapted."""
    return prepare_image(image, channels).transpose(1, 2, 0)


class _SegTaskBase:
    """Shared eval logic: full-resolution dice on predicted probability maps."""

    def __init__(self, model, channels: int):
        self.model = model
        self.channels = channels

    def parameters(self):
        return self.model.parameters()

    def predict_probs(self, sample) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def evaluate(self, samples: Sequence) -> float:
        """Mean dice (%) over samples."""
        scores = [dice_score(self.predict_probs(s)[0], s.mask) for s in samples]
        return float(np.mean(scores))


class TokenSegmentationTask(_SegTaskBase):
    """ViTSegmenter supervised at token level (APF-native training path)."""

    def __init__(self, model, patcher, channels: int = 1):
        super().__init__(model, channels)
        self.patcher = patcher

    def _seq_and_targets(self, sample):
        img = _patcher_image(sample.image, self.channels)
        seq = self.patcher(img)
        if hasattr(self.patcher, "patchify_labels"):
            targets = self.patcher.patchify_labels(sample.mask, seq)
        else:
            # Uniform patching: reuse the adaptive label logic via the shared
            # sequence geometry (leaf == grid cell).
            targets = AdaptivePatcher(patch_size=seq.patch_size).patchify_labels(
                sample.mask, seq)
        return seq, targets

    def batch_loss(self, samples: Sequence) -> nn.Tensor:
        if hasattr(samples, "tokens") and hasattr(samples, "sequences"):
            return self._collated_loss(samples)
        seqs, targets = [], []
        for s in samples:
            seq, t = self._seq_and_targets(s)
            seqs.append(seq)
            targets.append(t.reshape(len(seq), -1))
        logits = self.model.forward_sequences(seqs)
        y = np.stack(targets)
        # Mask padded tokens out of the loss.
        valid = np.stack([s.valid for s in seqs]).astype(np.float64)
        mask = nn.Tensor(valid[:, :, None])
        return nn.combined_bce_dice(logits * mask, y * valid[:, :, None])

    def _collated_loss(self, batch) -> nn.Tensor:
        """Loss from a pre-collated batch (pipeline pathway): patching and
        token stacking already happened outside the gradient loop, so only
        the label projection runs here."""
        if batch.samples is None:
            raise ValueError("collated batch lacks samples; collate with "
                             "samples= to train on it")
        if hasattr(self.patcher, "patchify_labels"):
            patchify = self.patcher.patchify_labels
        else:
            patchify = AdaptivePatcher(
                patch_size=batch.sequences[0].patch_size).patchify_labels
        targets = np.stack([
            patchify(s.mask, seq).reshape(len(seq), -1)
            for s, seq in zip(batch.samples, batch.sequences)])
        logits = self.model.forward(batch.tokens, batch.coords, batch.valid)
        valid = batch.valid.astype(np.float64)
        mask = nn.Tensor(valid[:, :, None])
        return nn.combined_bce_dice(logits * mask, targets * valid[:, :, None])

    def val_loss(self, samples: Sequence) -> float:
        with nn.no_grad():
            return float(self.batch_loss(samples).data)

    def predict_probs(self, sample) -> np.ndarray:
        img = _patcher_image(sample.image, self.channels)
        return self.model.predict_mask(_natural_sequence(self.patcher, img))


def _natural_sequence(patcher, img):
    """Inference-time sequence: skip random drop/pad when the patcher is
    adaptive (single images need no batching, and drops would leave holes)."""
    if hasattr(patcher, "extract_natural"):
        return patcher.extract_natural(img)
    return patcher(img)


class VolumeSegmentationTask:
    """VolumeViTSegmenter supervised at token level over octree cubes.

    The 3-D counterpart of :class:`TokenSegmentationTask`: samples carry a
    cubic ``image`` volume and an aligned integer ``mask`` (binarized to
    foreground for supervision). ``patcher`` is a
    :class:`~repro.patching.volumetric.VolumetricAdaptivePatcher` or a
    volumetric :class:`~repro.pipeline.engine.PatchPipeline` — the collated
    pathway (``Trainer.fit_loader`` over a ``DataLoader(pipeline=)``) moves
    all octree preprocessing out of the gradient loop.
    """

    def __init__(self, model, patcher):
        self.model = model
        self.patcher = patcher

    def parameters(self):
        return self.model.parameters()

    @staticmethod
    def _binary_mask(mask: np.ndarray) -> np.ndarray:
        return (np.asarray(mask) > 0).astype(np.float64)

    def _masked_loss(self, logits, targets: np.ndarray,
                     valid: np.ndarray) -> nn.Tensor:
        v = valid.astype(np.float64)
        mask = nn.Tensor(v[:, :, None])
        return nn.combined_bce_dice(logits * mask, targets * v[:, :, None])

    def batch_loss(self, samples) -> nn.Tensor:
        if hasattr(samples, "tokens") and hasattr(samples, "sequences"):
            return self._collated_loss(samples)
        seqs, targets = [], []
        for s in samples:
            seq = self.patcher(np.asarray(s.image, dtype=np.float64))
            t = self.patcher.patchify_labels(self._binary_mask(s.mask), seq)
            seqs.append(seq)
            targets.append(t.reshape(len(seq), -1))
        logits = self.model.forward_sequences(seqs)
        valid = np.stack([s.valid for s in seqs])
        return self._masked_loss(logits, np.stack(targets), valid)

    def _collated_loss(self, batch) -> nn.Tensor:
        if batch.samples is None:
            raise ValueError("collated batch lacks samples; collate with "
                             "samples= to train on it")
        targets = np.stack([
            self.patcher.patchify_labels(self._binary_mask(s.mask),
                                         seq).reshape(len(seq), -1)
            for s, seq in zip(batch.samples, batch.sequences)])
        logits = self.model.forward(batch.tokens, batch.coords, batch.valid)
        return self._masked_loss(logits, targets, batch.valid)

    def val_loss(self, samples) -> float:
        with nn.no_grad():
            return float(self.batch_loss(samples).data)

    def evaluate(self, samples) -> float:
        """Mean foreground dice (%) over whole volumes."""
        scores = []
        for s in samples:
            seq = _natural_sequence(self.patcher,
                                    np.asarray(s.image, dtype=np.float64))
            probs = self.model.predict_volume_probs(seq)
            scores.append(dice_score(probs, self._binary_mask(s.mask)))
        return float(np.mean(scores))


class ImageSegmentationTask(_SegTaskBase):
    """U-Net / TransUNet / Swin: images in, full-res logits out."""

    def __init__(self, model, channels: int = 1, multiclass: int = 0):
        super().__init__(model, channels)
        self.multiclass = multiclass

    def _images(self, samples) -> np.ndarray:
        return np.stack([prepare_image(s.image, self.channels) for s in samples])

    def batch_loss(self, samples: Sequence) -> nn.Tensor:
        logits = self.model(self._images(samples))
        if self.multiclass:
            onehot = np.zeros(logits.shape)
            for i, s in enumerate(samples):
                m = s.mask.astype(int)
                for k in range(self.multiclass):
                    onehot[i, k][m == k] = 1.0
            return (nn.multiclass_dice_loss(logits, onehot)
                    + nn.cross_entropy(logits.transpose(0, 2, 3, 1),
                                       np.stack([s.mask.astype(int) for s in samples])))
        masks = np.stack([s.mask[None] for s in samples])
        return nn.combined_bce_dice(logits, masks)

    def val_loss(self, samples: Sequence) -> float:
        with nn.no_grad():
            return float(self.batch_loss(samples).data)

    def predict_probs(self, sample) -> np.ndarray:
        return self.model.predict_mask(prepare_image(sample.image, self.channels))

    def evaluate(self, samples: Sequence) -> float:
        if not self.multiclass:
            return super().evaluate(samples)
        scores = []
        for s in samples:
            with nn.no_grad():
                logits = self.model(self._images([s])).data[0]
            pred = logits.argmax(axis=0)
            scores.append(np.nanmean(per_class_dice(pred, s.mask.astype(int),
                                                    self.multiclass)))
        return float(np.mean(scores))


class UNETRTask(_SegTaskBase):
    """UNETR2D: patch sequence + raw image in, full-res logits out."""

    def __init__(self, model, patcher, channels: int = 1):
        super().__init__(model, channels)
        self.patcher = patcher

    def batch_loss(self, samples: Sequence) -> nn.Tensor:
        imgs = np.stack([prepare_image(s.image, self.channels) for s in samples])
        seqs = [self.patcher(_patcher_image(s.image, self.channels))
                for s in samples]
        logits = self.model.forward_sequences(seqs, imgs)
        masks = np.stack([s.mask[None] for s in samples])
        return nn.combined_bce_dice(logits, masks)

    def val_loss(self, samples: Sequence) -> float:
        with nn.no_grad():
            return float(self.batch_loss(samples).data)

    def predict_probs(self, sample) -> np.ndarray:
        img = prepare_image(sample.image, self.channels)
        seq = _natural_sequence(self.patcher,
                                _patcher_image(sample.image, self.channels))
        return self.model.predict_mask(seq, img)


class SequenceClassificationTask:
    """ViTClassifier over patch sequences (Table V: ViT / APF-ViT)."""

    def __init__(self, model, patcher, channels: int = 3):
        self.model = model
        self.patcher = patcher
        self.channels = channels

    def parameters(self):
        return self.model.parameters()

    def _seqs(self, samples) -> List[PatchSequence]:
        return [self.patcher(_patcher_image(s.image, self.channels))
                for s in samples]

    def batch_loss(self, samples: Sequence) -> nn.Tensor:
        logits = self.model.forward_sequences(self._seqs(samples))
        labels = np.array([s.organ for s in samples])
        return nn.cross_entropy(logits, labels)

    def val_loss(self, samples: Sequence) -> float:
        with nn.no_grad():
            return float(self.batch_loss(samples).data)

    def evaluate(self, samples: Sequence) -> float:
        preds = [self.model.predict(seq) for seq in self._seqs(samples)]
        return top1_accuracy(preds, [s.organ for s in samples])


class ImageClassificationTask:
    """HIPTLite classification straight from images (Table V competitor)."""

    def __init__(self, model, channels: int = 3):
        self.model = model
        self.channels = channels

    def parameters(self):
        return self.model.parameters()

    def batch_loss(self, samples: Sequence) -> nn.Tensor:
        imgs = np.stack([prepare_image(s.image, self.channels) for s in samples])
        logits = self.model(imgs)
        return nn.cross_entropy(logits, np.array([s.organ for s in samples]))

    def val_loss(self, samples: Sequence) -> float:
        with nn.no_grad():
            return float(self.batch_loss(samples).data)

    def evaluate(self, samples: Sequence) -> float:
        preds = [self.model.predict(prepare_image(s.image, self.channels))
                 for s in samples]
        return top1_accuracy(preds, [s.organ for s in samples])
