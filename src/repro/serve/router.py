"""Fleet router — digest-affinity sharding over N engine replicas.

One :class:`~repro.serve.engine.InferenceEngine` saturates one process;
the next order of magnitude is a *fleet* of replicas behind a
:class:`FleetRouter`. The router adds exactly three policies, each layered
on machinery the engine already has:

**Digest cache affinity (rendezvous hashing).** Every payload already
carries a stable content digest (the same hash keying the pipeline's
sequence cache and the engine's result cache). The router ranks the live
replicas by highest-random-weight (rendezvous) score of
``(digest, rank)`` and routes to the winner, so *all* repetitions of a
payload land on the same replica: the fleet's LRU result caches **shard**
the key space instead of duplicating it, and the engine's in-flight
request collapsing keeps working across the router — concurrent
duplicates meet at their affinity replica. Rendezvous hashing has the
minimal-disruption property: removing a replica re-homes only the keys it
owned, every other key keeps its replica (and therefore its warm cache).

**Replica lifecycle.** Replicas are ``up``, ``draining``, or ``down``.
:meth:`drain` stops admitting to a replica while its queued work retires
through the normal batcher path; :meth:`kill` models fail-stop between
batches — the backlog of the dead replica is evicted
(:meth:`~repro.serve.engine.InferenceEngine.evict_pending`) and re-hashed
onto the survivors with futures intact, so accepted requests are never
lost (the regression suite pins this). :meth:`check` probes threaded-mode
replicas via ``engine.is_running`` and auto-kills any whose batcher died.

**Fleet-wide admission control.** A replica rejecting with
:class:`~repro.serve.queueing.EngineOverloaded` is not the end: the
router *spills* down the rendezvous preference order (sacrificing
affinity for availability — a deliberate, counted event). Only when every
live replica is at capacity does the caller see ``EngineOverloaded``,
with ``retry_after`` the minimum of the per-replica hints — the soonest
any replica expects capacity.

Replica addressing reuses the :class:`~repro.distributed.SimCluster`
topology (ranks ``0..world_size-1``), and fleet-wide statistics come from
merging per-replica metric registries (:meth:`MetricsRegistry.merge`) —
p50/p95/p99 over the whole fleet without re-bucketing a single sample.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence

import numpy as np

from ..distributed import SimCluster
from ..pipeline.engine import content_key as _digest
from .engine import InferenceEngine, _trace_digest
from .metrics import MetricsRegistry
from .queueing import EngineOverloaded

__all__ = ["Replica", "FleetRouter", "rendezvous_order",
           "REPLICA_UP", "REPLICA_DRAINING", "REPLICA_DOWN"]

REPLICA_UP = "up"
REPLICA_DRAINING = "draining"
REPLICA_DOWN = "down"


def rendezvous_order(key: Hashable, ranks: Sequence[int]) -> List[int]:
    """Highest-random-weight (rendezvous) preference order of ``ranks``.

    Deterministic in ``(key, rank)`` only — independent of process, host,
    and the *set* of ranks offered, which is what gives minimal
    disruption: dropping a rank from ``ranks`` leaves the relative order
    of the others untouched, so only the dropped rank's keys move.
    """
    token = repr(key).encode()
    return sorted(ranks,
                  key=lambda r: hashlib.blake2b(
                      token + b"|replica:%d" % r, digest_size=8).digest(),
                  reverse=True)


@dataclass
class Replica:
    """One engine replica plus its lifecycle state and routing counters."""

    rank: int
    engine: InferenceEngine
    state: str = REPLICA_UP
    routed: int = 0
    adopted: int = 0

    @property
    def accepting(self) -> bool:
        return self.state == REPLICA_UP

    @property
    def serving(self) -> bool:
        """Still executing queued work (up *or* draining)."""
        return self.state in (REPLICA_UP, REPLICA_DRAINING)


class FleetRouter:
    """Digest-affinity front door over N :class:`InferenceEngine` replicas.

    Parameters
    ----------
    engines:
        The replica engines, rank-ordered. Each should own its own
        Predictor (sharing the model weights is fine — they are read-only
        at inference). All replicas are assumed interchangeable: any
        request may execute anywhere, affinity is a cache optimization.
    cluster:
        Optional :class:`~repro.distributed.SimCluster` naming the
        topology; defaults to ``SimCluster(len(engines))``. Its
        ``world_size`` must match the replica count — ranks are the
        replica addresses.
    spill:
        When True (default), an overloaded affinity replica spills the
        request down the rendezvous preference order instead of rejecting
        — fleet-wide admission control. ``False`` gives strict affinity
        (reject as soon as the home replica is full).
    route_seconds:
        Virtual routing-hop delay, consumed by the fleet DES
        (:func:`~repro.serve.loadgen.run_fleet_load`); the router itself
        adds no latency in threaded mode.
    """

    def __init__(self, engines: Sequence[InferenceEngine], *,
                 cluster: Optional[SimCluster] = None, spill: bool = True,
                 route_seconds: float = 0.0, tracer=None):
        engines = list(engines)
        if not engines:
            raise ValueError("need at least one replica engine")
        self.cluster = cluster if cluster is not None \
            else SimCluster(len(engines))
        if self.cluster.world_size != len(engines):
            raise ValueError(
                f"topology world_size {self.cluster.world_size} != "
                f"{len(engines)} engines")
        if route_seconds < 0:
            raise ValueError("route_seconds must be >= 0")
        self.replicas = [Replica(rank, engine)
                         for rank, engine in enumerate(engines)]
        self.spill = spill
        self.route_seconds = route_seconds
        self.metrics = MetricsRegistry()
        # round-robin fallback cursor for payloads with no digest
        self._rr = 0
        # Tracing (repro.obs): routing decisions and fault events land on
        # the "router" track; the replicas' tracers are wired separately
        # (build_fleet shares one tracer across router + engines).
        if tracer is None:
            tracer = next((r.engine.tracer for r in self.replicas
                           if getattr(r.engine, "tracer", None) is not None),
                          None)
        self.tracer = tracer if (tracer is not None and tracer.enabled) \
            else None

    # -- membership --------------------------------------------------------
    def _replica(self, rank: int) -> Replica:
        if not 0 <= rank < len(self.replicas):
            raise ValueError(f"rank {rank} out of range "
                             f"[0, {len(self.replicas)})")
        return self.replicas[rank]

    def live_ranks(self) -> List[int]:
        """Ranks currently admitting new work."""
        return [r.rank for r in self.replicas if r.accepting]

    def preference(self, digest: Hashable) -> List[int]:
        """Live ranks in rendezvous order for ``digest`` (affinity first)."""
        return rendezvous_order(digest, self.live_ranks())

    # -- routing -----------------------------------------------------------
    def _route(self, digest: Optional[Hashable],
               call: Callable[[InferenceEngine], "object"]):
        if digest is not None:
            ranks = self.preference(digest)
        else:
            # no digest (result cache disabled): affinity is meaningless,
            # balance instead — rotate over the live set
            live = self.live_ranks()
            if live:
                self._rr = (self._rr + 1) % len(live)
                ranks = live[self._rr:] + live[:self._rr]
            else:
                ranks = []
        if not ranks:
            self.metrics.inc("rejected")
            raise EngineOverloaded("no live replicas (all down or draining)",
                                   retry_after=0.0)
        hints: List[float] = []
        for i, rank in enumerate(ranks if self.spill else ranks[:1]):
            replica = self.replicas[rank]
            try:
                result = call(replica.engine)
            except EngineOverloaded as exc:
                hints.append(exc.retry_after)
                continue
            replica.routed += 1
            self.metrics.inc("routed")
            self.metrics.inc(f"routed.{rank}")
            if digest is not None:
                self.metrics.inc("affinity_hit" if i == 0 else "spilled")
            if self.tracer is not None:
                self.tracer.instant(
                    "route", "router",
                    args={"rank": rank, "spilled": i > 0,
                          "digest": _trace_digest(digest)})
            return result
        self.metrics.inc("rejected")
        raise EngineOverloaded(
            f"all {len(ranks)} live replicas at capacity",
            retry_after=min(hints) if hints else 0.0)

    def submit(self, image: np.ndarray, *, lane: str = "interactive"):
        """Route one image to its affinity replica; returns the Future.

        Raises :class:`EngineOverloaded` only when *every* live replica
        rejects (``retry_after`` = the soonest per-replica hint).
        """
        image = np.asarray(image)
        digest = _digest(image) if self._caching else None
        return self._route(digest, lambda e: e.submit(image, lane=lane))

    def submit_volume(self, volume: np.ndarray, *, lane: str = "bulk"):
        """Route a whole volume to one replica (atomic slice admission).

        The digest of the *full* volume picks the replica, so all slices
        of one volume co-locate (their in-flight collapsing and padding
        cache hits stay local) and the engine's all-or-nothing volume
        admission is preserved per replica.
        """
        volume = np.asarray(volume)
        digest = _digest(volume) if self._caching else None
        return self._route(digest,
                           lambda e: e.submit_volume(volume, lane=lane))

    def cancel(self, future) -> bool:
        """Cancel a still-waiting submission wherever it is queued.

        The fleet face of :meth:`InferenceEngine.cancel`: the request may
        sit on its affinity replica, a spill target, or an adoptive
        replica after a kill — the owning queue is found by asking each
        serving replica (queues are admission-bounded, so the sweep is
        cheap). Same semantics as the engine call: dispatched, resolved,
        or twin-carrying requests are not cancelled (returns False).
        """
        for replica in self.replicas:
            if replica.serving and replica.engine.cancel(future):
                self.metrics.inc("cancelled")
                return True
        return False

    @property
    def _caching(self) -> bool:
        """Affinity only pays when at least one replica caches results."""
        return any(r.engine.config.result_cache_items > 0
                   for r in self.replicas)

    # -- lifecycle ---------------------------------------------------------
    def start(self, warmup: bool = True) -> "FleetRouter":
        """Start every replica's batcher thread (threaded mode)."""
        for r in self.replicas:
            if r.serving:
                r.engine.start(warmup=warmup)
        return self

    def stop(self) -> None:
        """Stop (and drain) every serving replica."""
        for r in self.replicas:
            if r.serving and r.engine.is_running:
                r.engine.stop()

    def drain(self, rank: int) -> Replica:
        """Stop admitting to ``rank``; queued work retires normally.

        The replica keeps executing (its batcher thread, or the DES pump)
        until :attr:`InferenceEngine.pending` reaches zero — poll
        :meth:`is_drained`, then :meth:`retire` or :meth:`restore` it.
        """
        replica = self._replica(rank)
        if replica.state == REPLICA_DOWN:
            raise ValueError(f"replica {rank} is down, cannot drain")
        replica.state = REPLICA_DRAINING
        self.metrics.inc("drains")
        if self.tracer is not None:
            self.tracer.instant("drain", "router", args={"rank": rank})
        return replica

    def is_drained(self, rank: int) -> bool:
        """True once a draining replica's queue is empty."""
        replica = self._replica(rank)
        return replica.state == REPLICA_DRAINING \
            and replica.engine.pending == 0

    def restore(self, rank: int) -> Replica:
        """Return a drained (or draining) replica to the admitting pool."""
        replica = self._replica(rank)
        if replica.state == REPLICA_DOWN:
            raise ValueError(f"replica {rank} is down; a down replica's "
                             "backlog was re-homed — build a fresh engine")
        replica.state = REPLICA_UP
        return replica

    def retire(self, rank: int) -> Replica:
        """Take a *drained* replica out of the fleet for good."""
        replica = self._replica(rank)
        if replica.engine.pending:
            raise RuntimeError(
                f"replica {rank} still holds {replica.engine.pending} "
                "queued requests — drain it first (or kill() to re-home)")
        if replica.engine.is_running:
            replica.engine.stop()
        replica.state = REPLICA_DOWN
        return replica

    def kill(self, rank: int) -> int:
        """Fail-stop replica ``rank`` and re-home its backlog (re-hash spill).

        Models a crash between batches: results already computed stand,
        the waiting queue is evicted with futures intact and re-routed by
        rendezvous re-hash over the survivors. Requests whose digest is
        unknown (caching off) round-robin over the survivors. Returns the
        number of re-homed requests; their futures only fail if *every*
        surviving replica is at capacity (counted as ``reroute_failed``).
        """
        replica = self._replica(rank)
        if replica.state == REPLICA_DOWN:
            return 0
        replica.state = REPLICA_DOWN
        self.metrics.inc("kills")
        tracer = self.tracer
        if tracer is not None:
            tracer.instant("kill", "router", args={"rank": rank})
        orphans, chains = replica.engine.evict_pending()
        rerouted = 0
        for req in orphans:
            targets = (self.preference(req.key) if req.key is not None
                       else self.live_ranks())
            adopted = False
            for target in targets:
                try:
                    self.replicas[target].engine.adopt(
                        [req], {id(req): chains.get(id(req), [])})
                except EngineOverloaded:
                    continue
                self.replicas[target].adopted += 1
                adopted = True
                if tracer is not None:
                    tracer.instant("reroute", "router",
                                   args={"rid": req.rid, "from": rank,
                                         "to": target})
                break
            if adopted:
                rerouted += 1
                continue
            exc = EngineOverloaded(
                f"replica {rank} died and no survivor could adopt its "
                "backlog", retry_after=0.0)
            self.metrics.inc("reroute_failed")
            req.future.set_exception(exc)
            if tracer is not None and req.rid:
                tracer.async_end("request", "router", tracer.clock(),
                                 req.rid, tid=req.lane,
                                 args={"outcome": "failed"})
            for _, twin_lane, fut, crid in chains.get(id(req), []):
                fut.set_exception(exc)
                if tracer is not None and crid:
                    tracer.async_end("request", "router", tracer.clock(),
                                     crid, tid=twin_lane,
                                     args={"outcome": "failed"})
        self.metrics.inc("rerouted", rerouted)
        return rerouted

    def check(self) -> Dict[int, str]:
        """Health probe: auto-kill replicas whose batcher thread died.

        Only meaningful in threaded mode — a replica that was started but
        whose daemon thread is no longer alive has crashed, and waiting on
        its futures would hang forever; its backlog is re-homed
        immediately. Returns rank -> state after the sweep.
        """
        for replica in self.replicas:
            engine = replica.engine
            if (replica.serving and engine._thread is not None
                    and not engine.is_running):
                self.kill(replica.rank)
        return {r.rank: r.state for r in self.replicas}

    def drain_all(self) -> None:
        """Synchronously run every serving replica's queue dry (DES/tests)."""
        for r in self.replicas:
            if r.serving:
                r.engine.drain()

    # -- introspection -----------------------------------------------------
    def stats(self) -> dict:
        """Router counters + fleet-wide merged metrics + per-replica view.

        ``fleet`` is the *merge* of every serving replica's registry
        (histograms added bucket-wise — see :meth:`Histogram.merge`), so
        ``fleet["latency"]["p99"]`` is the true fleet-wide tail, not an
        average of per-replica percentiles. Fleet cache figures aggregate
        hits/submissions across the sharded per-replica caches.
        """
        merged = MetricsRegistry()
        hits = submitted = items = capacity = 0
        per_replica: Dict[int, dict] = {}
        lane_names: set = set()
        for r in self.replicas:
            merged.merge(r.engine.metrics)
            snap = r.engine.stats()
            cache = snap["result_cache"]
            hits += cache["hits"]
            submitted += r.engine.metrics.counter("submitted").value
            items += cache["items"]
            capacity += cache["capacity"]
            lane_names.update(r.engine.config.lanes)
            per_replica[r.rank] = {
                "state": r.state,
                "routed": r.routed,
                "adopted": r.adopted,
                "queue_depth": snap["queue"]["total"],
                "cache_hits": cache["hits"],
                "completed": r.engine.metrics.counter("completed").value,
                # the replica's own lane-wise queue-wait histograms, so an
                # imbalance (one replica's interactive lane stalling) is
                # visible and not washed out by the fleet merge
                "queue_wait_per_lane": snap["queue"].get("wait_per_lane", {}),
            }
        fleet = merged.snapshot()
        # Fleet-wide per-lane queue wait, merged bucket-wise like every
        # other fleet histogram (true fleet percentiles, never averaged) —
        # the per-lane breakdown engine.stats() has but the merge dropped.
        wait_per_lane = {lane: fleet[f"queue_wait.{lane}"]
                         for lane in sorted(lane_names)
                         if f"queue_wait.{lane}" in fleet}
        return {
            "router": self.metrics.snapshot(),
            "fleet": fleet,
            "queue": {"wait_per_lane": wait_per_lane},
            "result_cache": {"hits": hits, "submitted": submitted,
                             "hit_rate": hits / submitted if submitted else 0.0,
                             "items": items, "capacity": capacity},
            "replicas": per_replica,
            "topology": {"world_size": self.cluster.world_size,
                         "live": self.live_ranks()},
        }

