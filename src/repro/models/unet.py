"""Classic U-Net (Ronneberger et al.) — the convolutional baseline of
Tables III/IV. Operates directly on images; no patching involved."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn import functional as F

__all__ = ["UNet"]


class _ConvBlock(nn.Module):
    """(conv3x3 -> GN -> ReLU) x 2."""

    def __init__(self, in_ch: int, out_ch: int, rng: np.random.Generator,
                 dtype=np.float32):
        super().__init__()
        self.c1 = nn.Conv2d(in_ch, out_ch, kernel=3, padding=1, rng=rng, dtype=dtype)
        self.n1 = nn.GroupNorm(_g(out_ch), out_ch, dtype=dtype)
        self.c2 = nn.Conv2d(out_ch, out_ch, kernel=3, padding=1, rng=rng, dtype=dtype)
        self.n2 = nn.GroupNorm(_g(out_ch), out_ch, dtype=dtype)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        x = self.n1(self.c1(x)).relu()
        return self.n2(self.c2(x)).relu()


def _g(ch: int) -> int:
    for g in (8, 4, 2, 1):
        if ch % g == 0:
            return g
    return 1


class UNet(nn.Module):
    """Encoder-decoder with skip connections.

    ``widths`` controls depth: e.g. (16, 32, 64) gives two 2x downsamplings.
    """

    def __init__(self, channels: int = 1, out_channels: int = 1,
                 widths=(16, 32, 64), rng: Optional[np.random.Generator] = None,
                 dtype=np.float32):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        if len(widths) < 2:
            raise ValueError("UNet needs at least two width levels")
        self.enc = nn.ModuleList([])
        prev = channels
        for w in widths:
            self.enc.append(_ConvBlock(prev, w, rng, dtype))
            prev = w
        self.up = nn.ModuleList([])
        self.dec = nn.ModuleList([])
        rev = list(widths)[::-1]
        for i in range(len(widths) - 1):
            self.up.append(nn.ConvTranspose2d(rev[i], rev[i + 1], kernel=2,
                                              stride=2, rng=rng, dtype=dtype))
            self.dec.append(_ConvBlock(rev[i + 1] * 2, rev[i + 1], rng, dtype))
        self.out_conv = nn.Conv2d(widths[0], out_channels, kernel=1, rng=rng,
                                  dtype=dtype)
        self.dtype = dtype

    def forward(self, images) -> nn.Tensor:
        """(B, C, Z, Z) images -> (B, out_channels, Z, Z) logits."""
        x = images if isinstance(images, nn.Tensor) else nn.Tensor(
            np.asarray(images, dtype=self.dtype))
        skips = []
        for i, block in enumerate(self.enc):
            x = block(x)
            if i < len(self.enc) - 1:
                skips.append(x)
                x = F.max_pool2d(x, 2)
        for up, dec, skip in zip(self.up, self.dec, reversed(skips)):
            x = up(x)
            x = dec(nn.concat([x, skip], axis=1))
        return self.out_conv(x)

    def predict_mask(self, image: np.ndarray) -> np.ndarray:
        """Inference probabilities (out_channels, Z, Z) for one (C, Z, Z) image."""
        with nn.no_grad():
            logits = self.forward(image[None])
        return 1.0 / (1.0 + np.exp(-logits.data[0]))
