#!/usr/bin/env python
"""BTCV-style 13-organ CT segmentation (paper Table IV workload).

Trains a multi-class U-Net and an APF-UNETR on synthetic abdominal CT slices
and reports the per-organ dice table the BTCV community uses.

Run:  python examples/ct_multiorgan.py [--epochs 8]
"""

import argparse

import numpy as np

from repro import nn
from repro.data import (BTCV_ORGANS, NUM_BTCV_CLASSES, SyntheticBTCV,
                        train_val_test_split)
from repro.experiments.common import ensure_nonempty_splits
from repro.metrics import per_class_dice
from repro.models import UNet, UNETR2D
from repro.patching import AdaptivePatcher
from repro.train import ImageSegmentationTask, Trainer, prepare_image
from repro.experiments.table4 import _MulticlassUNETRTask


def organ_table(task, samples) -> np.ndarray:
    """Mean per-organ dice over samples (NaN where absent)."""
    per = []
    for s in samples:
        if hasattr(task, "patcher"):
            img = prepare_image(s.image, 1)
            seq = task.patcher(img.transpose(1, 2, 0))
            with nn.no_grad():
                logits = task.model.forward_sequences([seq], img[None]).data[0]
        else:
            with nn.no_grad():
                logits = task.model(
                    prepare_image(s.image, 1)[None]).data[0]
        pred = logits.argmax(axis=0)
        per.append(per_class_dice(pred, s.mask.astype(int), NUM_BTCV_CLASSES))
    return np.nanmean(np.stack(per), axis=0)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--epochs", type=int, default=8)
    ap.add_argument("--resolution", type=int, default=64)
    args = ap.parse_args()

    k = NUM_BTCV_CLASSES
    ds = SyntheticBTCV(args.resolution, n_subjects=10)
    tr_s, va_s, te_s = train_val_test_split(ds, seed=0)
    train, val, test = ensure_nonempty_splits(
        [tr_s[i] for i in range(len(tr_s))],
        [va_s[i] for i in range(len(va_s))],
        [te_s[i] for i in range(len(te_s))])
    print(f"{len(train)} train / {len(val)} val / {len(test)} test slices")

    rng = np.random.default_rng(0)
    tasks = {
        "U-Net": ImageSegmentationTask(
            UNet(channels=1, out_channels=k, widths=(8, 16), rng=rng),
            channels=1, multiclass=k),
        "APF-UNETR-2": _MulticlassUNETRTask(
            UNETR2D(patch_size=2, channels=1, dim=32, depth=2, heads=2,
                    out_channels=k, decoder_ch=8,
                    max_len=(args.resolution // 2) ** 2, rng=rng),
            AdaptivePatcher(patch_size=2, split_value=2.0,
                            target_length=(args.resolution // 2) ** 2 // 2),
            k),
    }
    for name, task in tasks.items():
        trainer = Trainer(task, nn.AdamW(task.parameters(), lr=3e-3),
                          batch_size=2)
        trainer.fit(train, val, epochs=args.epochs)
        per = organ_table(task, test)
        print(f"\n== {name}: mean organ dice {np.nanmean(per):.1f}% ==")
        for (organ, *_), d in zip(BTCV_ORGANS, per):
            shown = f"{d:.1f}" if np.isfinite(d) else "absent"
            print(f"  {organ:<14s} {shown}")


if __name__ == "__main__":
    main()
