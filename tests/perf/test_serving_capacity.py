"""Tests for the serving capacity-planning helpers (repro.perf.serving)."""

import pytest

from repro.perf import (batching_speedup_bound, engine_capacity,
                        fleet_capacity, fleet_scaling_bound,
                        replicas_for_rate, routing_imbalance,
                        serial_capacity, utilization)
from repro.serve import ServiceModel


SM = ServiceModel(batch_seconds=0.04, token_seconds=1e-5, item_seconds=0.002)


class TestCapacity:
    def test_engine_capacity_amortizes_fixed_overhead(self):
        # per item at B=8: 0.04/8 + 0.003 = 0.008 -> 125 req/s
        assert engine_capacity(SM, 8, 100) == pytest.approx(8 / 0.064)
        assert serial_capacity(SM, 100) == pytest.approx(1 / 0.043)
        assert engine_capacity(SM, 1, 100) == serial_capacity(SM, 100)

    def test_capacity_monotone_in_batch(self):
        caps = [engine_capacity(SM, b, 128) for b in (1, 2, 4, 8, 16)]
        assert caps == sorted(caps)

    def test_speedup_bound_shape(self):
        # bound = (a + s) / (a/B + s); grows with B, approaches (a + s)/s
        bound8 = batching_speedup_bound(SM, 8, 100)
        assert bound8 == pytest.approx(0.043 / (0.04 / 8 + 0.003))
        assert 1.0 < batching_speedup_bound(SM, 2, 100) < bound8
        assert bound8 < batching_speedup_bound(SM, 64, 100)
        assert batching_speedup_bound(SM, 1, 100) == pytest.approx(1.0)

    def test_long_sequences_blunt_batching(self):
        # per-item work dominates at long L -> less overhead to amortize
        assert (batching_speedup_bound(SM, 8, 2000)
                < batching_speedup_bound(SM, 8, 50))

    def test_utilization(self):
        assert utilization(50.0, 100.0) == pytest.approx(0.5)
        assert utilization(150.0, 100.0) > 1.0
        with pytest.raises(ValueError):
            utilization(-1.0, 100.0)
        with pytest.raises(ValueError):
            utilization(10.0, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            engine_capacity(SM, 0, 100)


class TestFleetCapacity:
    def test_linear_in_replicas(self):
        one = engine_capacity(SM, 8, 100)
        for n in (1, 2, 4, 8):
            assert fleet_capacity(SM, 8, 100, n) == pytest.approx(n * one)

    def test_replica_validation(self):
        with pytest.raises(ValueError):
            fleet_capacity(SM, 8, 100, 0)
        with pytest.raises(ValueError):
            fleet_scaling_bound(0, [1, 1])

    def test_routing_imbalance(self):
        assert routing_imbalance([10, 10, 10, 10]) == pytest.approx(1.0)
        # one replica takes half the traffic of a 4-shard fleet -> 2.0
        assert routing_imbalance([30, 10, 10, 10]) == pytest.approx(2.0)
        assert routing_imbalance([0, 0]) == 1.0       # no traffic yet
        with pytest.raises(ValueError):
            routing_imbalance([])
        with pytest.raises(ValueError):
            routing_imbalance([3, -1])

    def test_scaling_bound_caps_speedup(self):
        # perfectly balanced: the full replica count is achievable
        assert fleet_scaling_bound(4, [25, 25, 25, 25]) == pytest.approx(4.0)
        # the busiest replica is the critical path
        assert fleet_scaling_bound(4, [40, 20, 20, 20]) == pytest.approx(2.5)

    def test_replicas_for_rate(self):
        cap = engine_capacity(SM, 8, 100)
        assert replicas_for_rate(0.0, SM, 8, 100) == 1
        assert replicas_for_rate(0.5 * cap, SM, 8, 100, headroom=1.0) == 1
        assert replicas_for_rate(2.5 * cap, SM, 8, 100, headroom=1.0) == 3
        # headroom inflates the fleet: 0.5 headroom doubles the need
        assert replicas_for_rate(2.0 * cap, SM, 8, 100, headroom=0.5) == 4

    def test_replicas_for_rate_validation(self):
        with pytest.raises(ValueError):
            replicas_for_rate(-1.0, SM, 8, 100)
        with pytest.raises(ValueError):
            replicas_for_rate(10.0, SM, 8, 100, headroom=0.0)
        with pytest.raises(ValueError):
            replicas_for_rate(10.0, SM, 8, 100, headroom=1.5)
