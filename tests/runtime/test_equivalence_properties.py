"""Property tests: compiled inference is byte-identical to eager.

Hypothesis drives randomized (batch, length, token grid, dtype, seed)
signatures through ViTSegmenter and VolumeViTSegmenter; for every drawn
case the compiled plan's logits must equal the eager ``no_grad`` forward
**bit for bit** — same values, same dtype. This is the load-bearing
contract of ``repro.runtime``: the executor may fuse, buffer-share and run
in place, but it must never produce a different float.

A companion gradcheck asserts the kernel-dispatch refactor left *training*
untouched: analytic gradients through the shared kernels still match
central differences, and tracing in one thread does not perturb a tape
being built concurrently.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn, runtime
from repro.models.vit import ViTClassifier, ViTSegmenter, VolumeViTSegmenter
from repro.nn.gradcheck import check_gradients

settings.register_profile("runtime", max_examples=12, deadline=None)
settings.load_profile("runtime")


def _forward_pair(model, tokens, coords, valid):
    with nn.no_grad():
        eager = model.forward(tokens, coords, valid).data
    cm = runtime.compile_model(model, tokens, coords, valid)
    return eager, cm(tokens, coords, valid)


def _assert_bit_identical(eager, compiled):
    assert eager.dtype == compiled.dtype
    np.testing.assert_array_equal(eager, compiled)


case = st.tuples(
    st.integers(1, 3),                        # batch
    st.integers(2, 24),                       # length
    st.integers(0, 2 ** 31 - 1),              # data seed
    st.integers(0, 2 ** 31 - 1),              # weight seed
    st.booleans(),                            # with valid mask
    st.sampled_from([np.float32, np.float64]),
)


class TestCompiledEquivalence:
    @given(case)
    def test_vit_segmenter_logits_bitwise(self, params):
        b, length, dseed, wseed, with_valid, dtype = params
        model = ViTSegmenter(patch_size=2, channels=1, dim=8, depth=2,
                             heads=2, max_len=32,
                             rng=np.random.default_rng(wseed),
                             dtype=dtype).eval()
        rng = np.random.default_rng(dseed)
        tokens = rng.normal(size=(b, length, 4))
        coords = rng.normal(size=(b, length, 3))
        valid = (rng.random((b, length)) > 0.3) if with_valid else None
        _assert_bit_identical(*_forward_pair(model, tokens, coords, valid))

    @given(case)
    def test_volume_vit_segmenter_logits_bitwise(self, params):
        b, length, dseed, wseed, with_valid, dtype = params
        model = VolumeViTSegmenter(patch_size=2, dim=8, depth=2, heads=2,
                                   max_len=32,
                                   rng=np.random.default_rng(wseed),
                                   dtype=dtype).eval()
        rng = np.random.default_rng(dseed)
        tokens = rng.normal(size=(b, length, 8))     # Pm³ = 8
        coords = rng.normal(size=(b, length, 4))
        valid = (rng.random((b, length)) > 0.3) if with_valid else None
        _assert_bit_identical(*_forward_pair(model, tokens, coords, valid))

    @given(st.integers(0, 2 ** 31 - 1))
    def test_vit_classifier_logits_bitwise(self, seed):
        rng = np.random.default_rng(seed)
        model = ViTClassifier(patch_size=2, channels=1, dim=8, depth=1,
                              heads=2, max_len=32, num_classes=4,
                              rng=np.random.default_rng(seed + 1)).eval()
        tokens = rng.normal(size=(2, 9, 4))
        coords = rng.normal(size=(2, 9, 3))
        valid = rng.random((2, 9)) > 0.2
        _assert_bit_identical(*_forward_pair(model, tokens, coords, valid))

    @given(st.integers(0, 2 ** 31 - 1))
    def test_plan_reuse_across_fresh_inputs(self, seed):
        """One plan, many feeds: later runs stay bit-identical too."""
        model = ViTSegmenter(patch_size=2, channels=1, dim=8, depth=1,
                             heads=2, max_len=32,
                             rng=np.random.default_rng(0)).eval()
        rng = np.random.default_rng(seed)
        shape = (2, 11, 4)
        tokens = rng.normal(size=shape)
        coords = rng.normal(size=(2, 11, 3))
        valid = rng.random((2, 11)) > 0.4
        cm = runtime.compile_model(model, tokens, coords, valid)
        for _ in range(3):
            tokens = rng.normal(size=shape)
            with nn.no_grad():
                expect = model.forward(tokens, coords, valid).data
            np.testing.assert_array_equal(cm(tokens, coords, valid), expect)


class TestDispatchGradientsUnchanged:
    """The refactor routed every forward through the kernel table; training
    gradients must still match finite differences end to end."""

    def test_segmenter_loss_gradcheck(self):
        rng = np.random.default_rng(0)
        model = ViTSegmenter(patch_size=2, channels=1, dim=6, depth=1,
                             heads=2, max_len=16,
                             rng=np.random.default_rng(1),
                             dtype=np.float64)
        tokens = rng.normal(size=(1, 5, 4))
        coords = rng.normal(size=(1, 5, 3))
        params = model.parameters()

        def loss(*_):
            return (model.forward(tokens, coords, None) ** 2.0).sum() * 0.01

        check_gradients(loss, params[:3], rtol=1e-3, atol=1e-5)

    def test_tracing_does_not_perturb_concurrent_tape(self):
        import threading
        model = ViTSegmenter(patch_size=2, channels=1, dim=6, depth=1,
                             heads=2, max_len=16,
                             rng=np.random.default_rng(1)).eval()
        rng = np.random.default_rng(2)
        tokens = rng.normal(size=(1, 5, 4))
        errors = []

        def trace_loop():
            try:
                for _ in range(5):
                    runtime.compile_model(model, tokens)
            except Exception as exc:   # pragma: no cover - failure path
                errors.append(exc)

        x = nn.Tensor(rng.normal(size=(4, 4)), requires_grad=True)
        thread = threading.Thread(target=trace_loop)
        thread.start()
        for _ in range(20):
            y = (x * 2.0).gelu().sum()
        thread.join()
        y.backward()
        assert not errors
        assert x.grad is not None       # tape survived concurrent tracing
