"""``repro.serve`` — the inference serving stack.

Two layers:

* :class:`Predictor` — the synchronous micro-batching core: cached APF
  preprocessing, sequence-length bucketing, compiled per-signature plans
  (:mod:`repro.runtime`), vectorized map stitching (:mod:`.stitch`).
* :class:`InferenceEngine` — the asynchronous front-end over a shared
  Predictor: ``submit(image) -> Future``, continuous batching with a
  latency-deadline flush, weighted-fair priority lanes, digest-keyed
  result caching, admission control (:class:`EngineOverloaded`), and a
  metrics registry. :mod:`.loadgen` drives it deterministically under a
  simulated clock for CI-stable load tests.
"""

from .engine import BatchReport, EngineConfig, InferenceEngine
from .loadgen import (Arrival, ServiceModel, SimClock, merge_traces,
                      poisson_trace, run_load, serial_baseline)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .predictor import Predictor, predict_image
from .queueing import EngineOverloaded, FairQueue, Request
from .stitch import stitch_image, stitch_volume

__all__ = [
    "Predictor", "predict_image", "stitch_image", "stitch_volume",
    "InferenceEngine", "EngineConfig", "BatchReport",
    "FairQueue", "Request", "EngineOverloaded",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "Arrival", "SimClock", "ServiceModel", "poisson_trace", "merge_traces",
    "run_load", "serial_baseline",
]
