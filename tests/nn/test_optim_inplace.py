"""In-place optimizer steps (ISSUE 3 satellite).

``SGD``/``Adam``/``AdamW`` now update parameters through preallocated
scratch buffers with ``out=`` ufuncs. Two contracts are pinned here:

1. the parameter's underlying array object is preserved (so compiled plans
   and any Tensor aliasing the weights observe updates without recompiling);
2. the update arithmetic replays the original allocating expressions
   **bit for bit** — training trajectories are unchanged.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn.modules import Parameter
from repro.nn.optim import SGD, Adam, AdamW


def _reference_sgd(p, g, lr, momentum, wd, v):
    if wd:
        g = g + wd * p
    if momentum:
        v *= momentum
        v += g
        g = v
    p -= lr * g


def _reference_adam(p, g, lr, b1, b2, eps, wd, m, v, t):
    bc1, bc2 = 1.0 - b1 ** t, 1.0 - b2 ** t
    if wd:
        g = g + wd * p
    m *= b1
    m += (1 - b1) * g
    v *= b2
    v += (1 - b2) * (g * g)
    p -= lr * (m / bc1) / (np.sqrt(v / bc2) + eps)


def _reference_adamw(p, g, lr, b1, b2, eps, wd, m, v, t):
    bc1, bc2 = 1.0 - b1 ** t, 1.0 - b2 ** t
    m *= b1
    m += (1 - b1) * g
    v *= b2
    v += (1 - b2) * (g * g)
    if wd:
        p -= lr * wd * p
    p -= lr * (m / bc1) / (np.sqrt(v / bc2) + eps)


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
class TestBitIdenticalTrajectories:
    @pytest.mark.parametrize("momentum,wd", [(0.0, 0.0), (0.9, 0.0),
                                             (0.0, 0.01), (0.9, 0.01)])
    def test_sgd(self, dtype, momentum, wd):
        rng = np.random.default_rng(0)
        p = Parameter(rng.normal(size=(5, 7)).astype(dtype))
        ref = p.data.copy()
        vel = np.zeros_like(ref)
        opt = SGD([p], lr=0.1, momentum=momentum, weight_decay=wd)
        for _ in range(6):
            g = rng.normal(size=p.shape).astype(dtype)
            p.grad = g.copy()
            opt.step()
            _reference_sgd(ref, g.copy(), 0.1, momentum, wd, vel)
            np.testing.assert_array_equal(p.data, ref)

    @pytest.mark.parametrize("cls,reference", [(Adam, _reference_adam),
                                               (AdamW, _reference_adamw)])
    @pytest.mark.parametrize("wd", [0.0, 0.01])
    def test_adam_family(self, dtype, cls, reference, wd):
        rng = np.random.default_rng(1)
        p = Parameter(rng.normal(size=(4, 3)).astype(dtype))
        ref = p.data.copy()
        m = np.zeros_like(ref)
        v = np.zeros_like(ref)
        opt = cls([p], lr=0.01, weight_decay=wd)
        for step in range(1, 7):
            g = rng.normal(size=p.shape).astype(dtype)
            p.grad = g.copy()
            opt.step()
            reference(ref, g.copy(), 0.01, 0.9, 0.999, 1e-8, wd, m, v, step)
            np.testing.assert_array_equal(p.data, ref)


class TestInPlaceSemantics:
    @pytest.mark.parametrize("make", [
        lambda ps: SGD(ps, lr=0.1, momentum=0.9, weight_decay=0.01),
        lambda ps: Adam(ps, lr=0.01, weight_decay=0.01),
        lambda ps: AdamW(ps, lr=0.01, weight_decay=0.01),
    ])
    def test_parameter_array_object_is_preserved(self, make):
        p = Parameter(np.ones((3, 2), np.float32))
        base = p.data
        alias = p.data[0]                      # a live view of the weights
        opt = make([p])
        for _ in range(3):
            p.grad = np.ones((3, 2), np.float32)
            opt.step()
        assert p.data is base
        np.testing.assert_array_equal(alias, p.data[0])

    def test_steps_reuse_scratch_buffers(self):
        p = Parameter(np.ones((8, 8), np.float32))
        opt = AdamW([p], lr=0.01, weight_decay=0.01)
        p.grad = np.ones((8, 8), np.float32)
        opt.step()
        n_bufs = len(opt._bufs)
        for _ in range(5):
            p.grad = np.ones((8, 8), np.float32)
            opt.step()
        assert len(opt._bufs) == n_bufs        # no per-step allocations

    def test_skips_params_without_grad(self):
        p1 = Parameter(np.ones(3, np.float32))
        p2 = Parameter(np.ones(3, np.float32))
        opt = SGD([p1, p2], lr=0.5)
        p1.grad = np.ones(3, np.float32)
        opt.step()
        np.testing.assert_array_equal(p2.data, np.ones(3))
        assert not np.array_equal(p1.data, np.ones(3))

    def test_compiled_plan_sees_inplace_updates(self):
        """The serving story: optimizers mutate in place, so a compiled
        plan's constant-folded weight views track training steps."""
        from repro import runtime
        lin = nn.Linear(4, 2, rng=np.random.default_rng(0))

        def fn(x):
            return lin(x)

        feeds = {"x": np.ones((1, 4), np.float32)}
        from repro.runtime.trace import trace
        plan = runtime.compile_graph(trace(fn, feeds))
        before = plan.run(feeds).copy()
        opt = SGD(lin.parameters(), lr=0.5)
        for p in lin.parameters():
            p.grad = np.ones_like(p.data)
        opt.step()
        after = plan.run(feeds)
        with nn.no_grad():
            expect = fn(nn.Tensor(feeds["x"])).data
        np.testing.assert_array_equal(after, expect)
        assert not np.array_equal(before, after)
