"""Finite-difference validation of every differentiable op and module path.

These are the load-bearing tests of the nn substrate: if they pass, training
dynamics downstream can be trusted.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.gradcheck import check_gradients

rng = np.random.default_rng(42)


def t(shape, scale=1.0):
    return nn.Tensor(rng.normal(size=shape, scale=scale).astype(np.float64),
                     requires_grad=True)


class TestElementwiseGrads:
    def test_exp(self):
        check_gradients(lambda x: x.exp().sum(), [t((3, 4))])

    def test_log(self):
        x = nn.Tensor(rng.uniform(0.5, 2.0, size=(3, 4)), requires_grad=True)
        check_gradients(lambda v: v.log().sum(), [x])

    def test_sqrt(self):
        x = nn.Tensor(rng.uniform(0.5, 2.0, size=(5,)), requires_grad=True)
        check_gradients(lambda v: v.sqrt().sum(), [x])

    def test_tanh(self):
        check_gradients(lambda x: x.tanh().sum(), [t((4,))])

    def test_sigmoid(self):
        check_gradients(lambda x: x.sigmoid().sum(), [t((4,))])

    def test_relu(self):
        x = nn.Tensor(np.array([-1.5, -0.3, 0.4, 2.0]), requires_grad=True)
        check_gradients(lambda v: v.relu().sum(), [x])

    def test_gelu(self):
        check_gradients(lambda x: x.gelu().sum(), [t((6,))])

    def test_mul_broadcast(self):
        check_gradients(lambda a, b: (a * b).sum(), [t((2, 3)), t((3,))])

    def test_div(self):
        a = t((3,))
        b = nn.Tensor(rng.uniform(0.5, 1.5, size=(3,)), requires_grad=True)
        check_gradients(lambda x, y: (x / y).sum(), [a, b])

    def test_var(self):
        check_gradients(lambda x: x.var(axis=1).sum(), [t((2, 5))])


class TestMatmulGrads:
    def test_2d(self):
        check_gradients(lambda a, b: (a @ b).sum(), [t((3, 4)), t((4, 2))])

    def test_batched(self):
        check_gradients(lambda a, b: (a @ b).sum(), [t((2, 3, 4)), t((2, 4, 2))])

    def test_broadcast_rhs(self):
        check_gradients(lambda a, b: (a @ b).sum(), [t((2, 3, 4)), t((4, 2))])


class TestFunctionalGrads:
    def test_softmax(self):
        c = nn.Tensor(rng.normal(size=(2, 5)))
        check_gradients(lambda x: (F.softmax(x, axis=-1) * c).sum(), [t((2, 5))])

    def test_log_softmax(self):
        c = nn.Tensor(rng.normal(size=(2, 5)))
        check_gradients(lambda x: (F.log_softmax(x, axis=-1) * c).sum(), [t((2, 5))])

    def test_layer_norm(self):
        x, w, b = t((2, 3, 8)), t((8,)), t((8,))
        c = nn.Tensor(rng.normal(size=(2, 3, 8)))
        check_gradients(lambda xx, ww, bb: (F.layer_norm(xx, ww, bb) * c).sum(),
                        [x, w, b], rtol=1e-3, atol=1e-5)

    def test_conv2d(self):
        x, w, b = t((2, 3, 6, 6)), t((4, 3, 3, 3)), t((4,))
        check_gradients(lambda xx, ww, bb: F.conv2d(xx, ww, bb, stride=1, padding=1).sum(),
                        [x, w, b], rtol=1e-3, atol=1e-5)

    def test_conv2d_strided(self):
        x, w = t((1, 2, 8, 8)), t((3, 2, 2, 2))
        check_gradients(lambda xx, ww: F.conv2d(xx, ww, None, stride=2).sum(),
                        [x, w], rtol=1e-3, atol=1e-5)

    def test_conv_transpose2d(self):
        x, w, b = t((2, 4, 4, 4)), t((4, 3, 2, 2)), t((3,))
        check_gradients(lambda xx, ww, bb: F.conv_transpose2d(xx, ww, bb, stride=2).sum(),
                        [x, w, b], rtol=1e-3, atol=1e-5)

    def test_conv_transpose2d_padded(self):
        x, w = t((1, 2, 5, 5)), t((2, 2, 3, 3))
        check_gradients(lambda xx, ww: F.conv_transpose2d(xx, ww, None, stride=1,
                                                          padding=1).sum(),
                        [x, w], rtol=1e-3, atol=1e-5)

    def test_max_pool2d(self):
        check_gradients(lambda x: F.max_pool2d(x, 2).sum(), [t((1, 2, 4, 4))])

    def test_avg_pool2d(self):
        check_gradients(lambda x: F.avg_pool2d(x, 2).sum(), [t((1, 2, 4, 4))])

    def test_upsample_nearest(self):
        c = nn.Tensor(rng.normal(size=(1, 2, 8, 8)))
        check_gradients(lambda x: (F.upsample_nearest2d(x, 2) * c).sum(),
                        [t((1, 2, 4, 4))])


class TestModuleGrads:
    def test_linear(self):
        lin = nn.Linear(5, 3, rng=rng, dtype=np.float64)
        x = t((2, 5))
        params = [x, lin.weight, lin.bias]
        check_gradients(lambda xx, w, b: lin(xx).sum(), params, rtol=1e-3)

    def test_mha_full_path(self):
        mha = nn.MultiHeadAttention(8, 2, rng=rng, dtype=np.float64)
        x = t((1, 4, 8), scale=0.5)
        tensors = [x] + mha.parameters()
        check_gradients(lambda *args: (mha(args[0]) ** 2).sum(), tensors,
                        rtol=5e-3, atol=1e-5)

    def test_transformer_layer(self):
        layer = nn.TransformerEncoderLayer(8, 2, rng=rng, dtype=np.float64)
        x = t((1, 3, 8), scale=0.5)
        check_gradients(lambda xx: (layer(xx) ** 2).mean(), [x],
                        rtol=5e-3, atol=1e-5)

    def test_groupnorm(self):
        gn = nn.GroupNorm(2, 4, dtype=np.float64)
        x = t((2, 4, 3, 3))
        c = nn.Tensor(rng.normal(size=(2, 4, 3, 3)))
        check_gradients(lambda xx: (gn(xx) * c).sum(), [x], rtol=1e-3, atol=1e-5)

    def test_batchnorm_train_mode(self):
        bn = nn.BatchNorm2d(3, dtype=np.float64)
        x = t((2, 3, 4, 4))
        # Note: BN treats batch stats as constants w.r.t. grad (matches
        # stop-gradient running-stat formulations); check output shape + finite grads.
        y = bn(x)
        (y * y).sum().backward()
        assert x.grad is not None and np.isfinite(x.grad).all()


class TestLossGrads:
    def test_bce(self):
        logits = t((8,))
        target = nn.Tensor((rng.random(8) > 0.5).astype(np.float64))
        check_gradients(lambda x: nn.bce_loss(x, target), [logits])

    def test_dice(self):
        logits = t((8,))
        target = nn.Tensor((rng.random(8) > 0.5).astype(np.float64))
        check_gradients(lambda x: nn.dice_loss(x, target), [logits])

    def test_combined(self):
        logits = t((2, 1, 4, 4))
        target = nn.Tensor((rng.random((2, 1, 4, 4)) > 0.5).astype(np.float64))
        check_gradients(lambda x: nn.combined_bce_dice(x, target), [logits])

    def test_cross_entropy(self):
        logits = t((4, 6))
        target = rng.integers(0, 6, size=4)
        check_gradients(lambda x: nn.cross_entropy(x, target), [logits])

    def test_multiclass_dice(self):
        logits = t((2, 3, 4, 4))
        onehot = np.zeros((2, 3, 4, 4))
        cls = rng.integers(0, 3, size=(2, 4, 4))
        for c in range(3):
            onehot[:, c][cls == c] = 1.0
        check_gradients(lambda x: nn.multiclass_dice_loss(x, onehot), [logits])


class TestLossValues:
    def test_bce_matches_naive(self):
        x = rng.normal(size=50)
        y = (rng.random(50) > 0.5).astype(float)
        p = 1 / (1 + np.exp(-x))
        expected = -(y * np.log(p) + (1 - y) * np.log(1 - p)).mean()
        got = float(nn.bce_loss(nn.Tensor(x), y).data)
        assert got == pytest.approx(expected, rel=1e-6)

    def test_bce_extreme_logits_finite(self):
        x = nn.Tensor(np.array([500.0, -500.0]), requires_grad=True)
        loss = nn.bce_loss(x, np.array([1.0, 0.0]))
        assert np.isfinite(float(loss.data))
        loss.backward()
        assert np.isfinite(x.grad).all()

    def test_dice_perfect_prediction_near_zero(self):
        y = np.ones(100)
        loss = float(nn.dice_loss(nn.Tensor(np.full(100, 20.0)), y).data)
        assert loss < 1e-3

    def test_cross_entropy_uniform(self):
        logits = nn.Tensor(np.zeros((2, 4)))
        loss = float(nn.cross_entropy(logits, np.array([0, 3])).data)
        assert loss == pytest.approx(np.log(4), rel=1e-6)
