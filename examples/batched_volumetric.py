#!/usr/bin/env python
"""Batched volumetric APF: the 3-D pipeline end to end.

Walks the full production path for volumes:

1. a lazy dataset of synthetic cubic CT scans,
2. the dimension-generic ``PatchPipeline`` over a ``VolumeAPFConfig``
   (batched bit-identical octree kernels + LRU cache + collation),
3. ``Trainer.fit_loader`` over ``DataLoader(pipeline=...)`` — octree
   preprocessing runs once per volume, every epoch after the first hits
   the cache,
4. batched per-slice 2-D inference (``predict_volume_batched``) for the
   paper's §IV-F2 slice-to-volume protocol.

Run:  python examples/batched_volumetric.py
"""

import numpy as np

from repro import nn
from repro.data import DataLoader, SyntheticVolumes
from repro.models import VolumeViTSegmenter
from repro.patching import VolumeAPFConfig, VolumetricAdaptivePatcher
from repro.pipeline import BatchedVolumetricPatcher, PatchPipeline
from repro.train import Trainer, VolumeSegmentationTask, predict_volume_batched


def main() -> None:
    res, n_volumes = 32, 6
    ds = SyntheticVolumes(res, n_volumes)
    print(f"dataset: {n_volumes} synthetic CT volumes at {res}^3")

    # -- batched engine vs the per-volume reference loop ------------------
    cfg = VolumeAPFConfig(patch_size=4, split_value=8.0)
    vols = [ds[i].volume for i in range(n_volumes)]
    ref = VolumetricAdaptivePatcher(cfg)
    batched = BatchedVolumetricPatcher(cfg)
    singles = [ref.extract_natural(v) for v in vols]
    seqs = batched.extract_natural_batch(vols)
    assert all(np.array_equal(a.patches, b.patches)
               for a, b in zip(singles, seqs))
    uniform = (res // cfg.patch_size) ** 3
    mean_len = np.mean([len(s) for s in seqs])
    print(f"octree tokens       : {mean_len:.0f} vs uniform {uniform} "
          f"({uniform / mean_len:.1f}x sequence reduction) — batched output "
          f"bit-identical to the per-volume loop")

    # -- pipeline + loader + trainer --------------------------------------
    pipe = PatchPipeline(VolumeAPFConfig(patch_size=4, split_value=8.0,
                                         target_length=128),
                         cache_items=64)
    loader = DataLoader(ds, batch_size=2, shuffle=True, pipeline=pipe)
    model = VolumeViTSegmenter(patch_size=4, dim=32, depth=1, heads=2,
                               max_len=1024)
    task = VolumeSegmentationTask(model, pipe)
    trainer = Trainer(task, nn.SGD(task.parameters(), lr=0.05))
    history = trainer.fit_loader(loader, [ds[0]], epochs=2)
    print(f"trained 2 epochs    : losses "
          f"{[round(v, 4) for v in history.train_loss]}")
    print(f"cache stats         : {pipe.stats}")

    # -- batched per-slice inference (§IV-F2 protocol) --------------------
    vol = ds[0].volume
    threshold = lambda s: (s > 0.5).astype(int)
    pred = predict_volume_batched(
        lambda chunk: [threshold(s) for s in chunk], vol, batch_size=8)
    print(f"slice-batched pred  : {pred.shape} from {vol.shape} volume")


if __name__ == "__main__":
    main()
