"""Tests for fleet assembly (build_fleet / FleetConfig)."""

import numpy as np
import pytest

from repro.data import SyntheticPAIP
from repro.distributed import SimCluster
from repro.models.vit import ViTSegmenter
from repro.pipeline import PatchPipeline
from repro.serve import (FleetConfig, Predictor, ServiceModel, SimClock,
                         build_fleet)


def _factory():
    model = ViTSegmenter(patch_size=4, channels=1, dim=16, depth=1, heads=2,
                         max_len=256, rng=np.random.default_rng(1))

    def make(rank):
        pipe = PatchPipeline(patch_size=4, split_value=8.0, channels=1,
                             cache_items=32)
        return Predictor(model, pipe, max_batch=4, bucket=16)

    return make


class TestBuildFleet:
    def test_defaults_two_replicas(self):
        router = build_fleet(_factory(), clock=SimClock().now,
                             service_model=ServiceModel())
        assert len(router.replicas) == 2
        assert router.cluster.world_size == 2
        assert router.spill is True

    def test_replicas_overrides_config(self):
        cfg = FleetConfig(replicas=2, spill=False, route_seconds=0.5)
        router = build_fleet(_factory(), cfg, replicas=4,
                             clock=SimClock().now,
                             service_model=ServiceModel())
        assert len(router.replicas) == 4
        assert router.spill is False
        assert router.route_seconds == 0.5

    def test_engines_are_independent(self):
        router = build_fleet(_factory(), replicas=3, clock=SimClock().now,
                             service_model=ServiceModel())
        predictors = {id(r.engine.predictor) for r in router.replicas}
        queues = {id(r.engine._queue) for r in router.replicas}
        assert len(predictors) == 3
        assert len(queues) == 3

    def test_engine_opts_forwarded(self):
        router = build_fleet(_factory(), replicas=2, clock=SimClock().now,
                             service_model=ServiceModel(),
                             max_queue=7, result_cache_items=0)
        for r in router.replicas:
            assert r.engine.config.max_queue == 7
            assert r.engine.config.result_cache_items == 0

    def test_heterogeneous_service_models(self):
        fast = ServiceModel()
        slow = ServiceModel(batch_seconds=10 * fast.batch_seconds,
                            token_seconds=10 * fast.token_seconds,
                            item_seconds=10 * fast.item_seconds)
        router = build_fleet(_factory(), replicas=2, clock=SimClock().now,
                             service_model=[fast, slow])
        assert router.replicas[0].engine.service_model is fast
        assert router.replicas[1].engine.service_model is slow

    def test_service_model_count_mismatch(self):
        with pytest.raises(ValueError):
            build_fleet(_factory(), replicas=3, clock=SimClock().now,
                        service_model=[ServiceModel(), ServiceModel()])

    def test_replica_count_validation(self):
        with pytest.raises(ValueError):
            build_fleet(_factory(), replicas=0)

    def test_explicit_cluster(self):
        cluster = SimCluster(2)
        router = build_fleet(_factory(), replicas=2, cluster=cluster,
                             clock=SimClock().now,
                             service_model=ServiceModel())
        assert router.cluster is cluster

    def test_end_to_end_submit(self):
        router = build_fleet(_factory(), replicas=2, clock=SimClock().now,
                             service_model=ServiceModel())
        ds = SyntheticPAIP(64, 3)
        futs = [router.submit(ds[i].image) for i in range(3)]
        router.drain_all()
        for fut in futs:
            assert fut.result().ndim == 3
