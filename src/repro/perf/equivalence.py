"""Equal-cost equivalence analysis (paper §I contribution 1).

The paper claims that at the same compute budget APF can use "nearly 8x
smaller patch sizes or 64x longer sequences" than uniform patching. This
module makes the claim precise: given the uniform budget ``N_u = (Z/P)^2``
and the empirical APF sequence-length curve ``L(P')`` measured on a dataset,
find the smallest patch size whose APF sequence fits the budget.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from ..patching import AdaptivePatcher, uniform_sequence_length

__all__ = ["apf_length_curve", "equal_cost_patch_size", "equivalent_sequence_gain"]


def apf_length_curve(images: Sequence[np.ndarray], patch_sizes: Iterable[int],
                     split_value: float = 8.0) -> Dict[int, float]:
    """Mean APF sequence length per candidate patch size over ``images``."""
    out: Dict[int, float] = {}
    for p in patch_sizes:
        lengths = [len(AdaptivePatcher(patch_size=p, split_value=split_value)(img))
                   for img in images]
        out[p] = float(np.mean(lengths))
    return out


def equal_cost_patch_size(resolution: int, uniform_patch: int,
                          curve: Dict[int, float]) -> Optional[int]:
    """Smallest APF patch size whose mean sequence length fits the uniform
    budget ``(Z/P)^2``; None if no candidate fits."""
    budget = uniform_sequence_length(resolution, uniform_patch)
    fitting = [p for p, length in curve.items() if length <= budget]
    return min(fitting) if fitting else None


def equivalent_sequence_gain(resolution: int, uniform_patch: int,
                             curve: Dict[int, float]) -> float:
    """How many times more *effective* tokens APF affords at equal cost.

    Effective tokens of APF at patch P' = the uniform sequence length its
    finest regions correspond to, ``(Z/P')^2``, achieved while the actual
    (paid-for) sequence stays within the uniform budget.
    """
    p_star = equal_cost_patch_size(resolution, uniform_patch, curve)
    if p_star is None:
        return 1.0
    return (uniform_sequence_length(resolution, p_star)
            / uniform_sequence_length(resolution, uniform_patch))
