"""Intensity normalization helpers (paper §IV-B: inputs normalized to [0,1])."""

from __future__ import annotations

import numpy as np

__all__ = ["normalize01", "to_grayscale"]

#: ITU-R BT.601 luma weights.
_LUMA = np.array([0.299, 0.587, 0.114])


def normalize01(img: np.ndarray) -> np.ndarray:
    """Linearly rescale to [0, 1]; constant images map to zeros."""
    a = np.asarray(img, dtype=np.float64)
    lo, hi = a.min(), a.max()
    if hi - lo < 1e-12:
        return np.zeros_like(a)
    return (a - lo) / (hi - lo)


def to_grayscale(img: np.ndarray) -> np.ndarray:
    """Collapse an (H, W, 3) RGB image to (H, W) luma; pass 2-D through."""
    a = np.asarray(img, dtype=np.float64)
    if a.ndim == 2:
        return a
    if a.ndim == 3 and a.shape[2] == 3:
        return a @ _LUMA
    if a.ndim == 3 and a.shape[2] == 1:
        return a[:, :, 0]
    raise ValueError(f"cannot convert shape {a.shape} to grayscale")
