"""§I contribution-1 regeneration: "at the same cost, APF affords ~8x smaller
patches / ~64x longer effective sequences" (paper's equal-budget claim).
"""


def test_equal_cost_patch_size_gain(once):
    from repro.data import generate_wsi
    from repro.perf import (apf_length_curve, equal_cost_patch_size,
                            equivalent_sequence_gain)

    resolution, uniform_patch = 256, 8

    def measure():
        images = [generate_wsi(resolution, seed=i).image for i in range(4)]
        curve = apf_length_curve(images, patch_sizes=(2, 4, 8, 16),
                                 split_value=8.0)
        return curve

    curve = once(measure)
    print(f"\nAPF mean sequence length per patch size: "
          f"{ {p: round(l, 1) for p, l in curve.items()} }")
    p_star = equal_cost_patch_size(resolution, uniform_patch, curve)
    gain = equivalent_sequence_gain(resolution, uniform_patch, curve)
    print(f"uniform P={uniform_patch} budget fits APF patch {p_star} "
          f"(effective-sequence gain {gain:.0f}x)")
    # Paper: ~8x smaller patches (64x effective tokens) at equal cost on 64K^2
    # WSIs, whose detail fraction is far lower than our 256^2 synthetics
    # support; at this scale the curve sustains ≥4x smaller / ≥16x tokens.
    assert p_star is not None
    assert p_star <= uniform_patch // 4
    assert gain >= 16.0
