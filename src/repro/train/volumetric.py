"""Per-slice 2-D inference reassembled into 3-D predictions (paper §IV-F2).

The paper follows the fixed-point/TransUNet convention for BTCV: "we applied
APF to each 2D slice of each CT sample and inferred all the slices to
reconstruct the final 3D predictions". This module implements that protocol
for any task adapter exposing per-slice class predictions.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from .. import nn
from ..metrics import per_class_dice

__all__ = ["predict_volume", "predict_volume_batched", "volume_dice"]


def predict_volume(predict_slice: Callable[[np.ndarray], np.ndarray],
                   volume: np.ndarray) -> np.ndarray:
    """Apply a per-slice class predictor along axis 0 of a (S, Z, Z) volume."""
    v = np.asarray(volume)
    if v.ndim != 3:
        raise ValueError(f"expected (slices, Z, Z) volume, got {v.shape}")
    return np.stack([predict_slice(v[i]) for i in range(v.shape[0])])


def predict_volume_batched(
        predict_slices: Callable[[List[np.ndarray]], Sequence[np.ndarray]],
        volume: np.ndarray, batch_size: int = 8) -> np.ndarray:
    """Batched variant of :func:`predict_volume`.

    ``predict_slices`` receives chunks of up to ``batch_size`` slices and
    returns one prediction per slice — the natural fit for a
    :class:`~repro.pipeline.engine.PatchPipeline` front-end, which patches
    and collates each chunk in one shot instead of re-running the per-slice
    APF cascade ``S`` times. Output is identical to the per-slice loop for
    any deterministic predictor.
    """
    v = np.asarray(volume)
    if v.ndim != 3:
        raise ValueError(f"expected (slices, Z, Z) volume, got {v.shape}")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    preds: List[np.ndarray] = []
    for start in range(0, v.shape[0], batch_size):
        chunk = [v[i] for i in range(start, min(start + batch_size,
                                                v.shape[0]))]
        out = list(predict_slices(chunk))
        if len(out) != len(chunk):
            raise ValueError(f"predictor returned {len(out)} predictions "
                             f"for {len(chunk)} slices")
        preds.extend(np.asarray(p) for p in out)
    return np.stack(preds)


def volume_dice(pred_volume: np.ndarray, true_volume: np.ndarray,
                num_classes: int) -> float:
    """3-D dice averaged over organ classes, computed on the *whole volume*
    (pooling intersections across slices, as the challenge metric does)."""
    p = np.asarray(pred_volume)
    t = np.asarray(true_volume)
    if p.shape != t.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {t.shape}")
    return float(np.nanmean(per_class_dice(p, t, num_classes)))


def slices_to_volume_task(task, samples: Sequence) -> float:
    """Evaluate a 2-D task on a stack of slice samples as one 3-D volume.

    ``samples`` are slice objects of a single subject (ordered); returns the
    volumetric mean-organ dice.
    """
    from .tasks import prepare_image

    preds: List[np.ndarray] = []
    masks: List[np.ndarray] = []
    for s in samples:
        img = prepare_image(s.image, 1)
        if hasattr(task, "patcher"):
            seq = task.patcher(img.transpose(1, 2, 0))
            with nn.no_grad():
                logits = task.model.forward_sequences([seq], img[None]).data[0]
        else:
            with nn.no_grad():
                logits = task.model(img[None]).data[0]
        preds.append(logits.argmax(axis=0))
        masks.append(s.mask.astype(int))
    num_classes = int(max(m.max() for m in masks)) + 1
    return volume_dice(np.stack(preds), np.stack(masks), num_classes)
