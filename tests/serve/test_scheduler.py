"""Unit tests for the work-graph scheduler — the single truth for
bucketing, micro-batch formation, graph execution, and tile reduce."""

import numpy as np

from repro.data import SyntheticPAIP, generate_ct_volume
from repro.models.vit import ViTSegmenter
from repro.pipeline import PatchPipeline
from repro.serve import Predictor, SequenceNode, class_map


def _model(**kw):
    args = dict(patch_size=4, channels=1, dim=16, depth=1, heads=2,
                max_len=256, rng=np.random.default_rng(1))
    args.update(kw)
    return ViTSegmenter(**args)


def _predictor(model=None, **kw):
    args = dict(max_batch=3, bucket=16)
    args.update(kw)
    pipe = PatchPipeline(patch_size=4, split_value=8.0, channels=1,
                         cache_items=32)
    return Predictor(model if model is not None else _model(), pipe, **args)


def _images(n, res=64):
    ds = SyntheticPAIP(res, n)
    return [ds[i].image for i in range(n)]


class TestBucketing:
    def test_bucket_grid_and_cap(self):
        p = _predictor()
        s = p.scheduler
        assert s.bucket_length(1) == 16
        assert s.bucket_length(16) == 16
        assert s.bucket_length(17) == 32
        assert s.bucket_length(10_000) == p.max_len

    def test_predictor_delegates(self):
        p = _predictor()
        for n in (1, 15, 16, 17, 200, 9999):
            assert p.bucket_length(n) == p.scheduler.bucket_length(n)


class TestPlanFormation:
    def _nodes(self, buckets):
        return [SequenceNode(seq=None, bucket=b, order=i)
                for i, b in enumerate(buckets)]

    def test_buckets_ascend_fifo_within_chunked_at_max_batch(self):
        sched = _predictor().scheduler          # max_batch=3
        micros = sched.plan(self._nodes([32, 16, 32, 16, 16, 32, 16, 48]))
        assert [m.signature for m in micros] == [
            (3, 16), (1, 16), (3, 32), (1, 48)]
        order16 = [n.order for m in micros if m.length == 16
                   for n in m.nodes]
        assert order16 == [1, 3, 4, 6]          # FIFO inside the bucket

    def test_max_batch_override(self):
        sched = _predictor().scheduler
        micros = sched.plan(self._nodes([16, 16, 16]), max_batch=1)
        assert [m.signature for m in micros] == [(1, 16)] * 3

    def test_order_stamps_are_monotonic_across_calls(self):
        p = _predictor()
        seqs = p._naturals(_images(2), None)
        a = p.scheduler.sequence_nodes(seqs)
        b = p.scheduler.sequence_nodes(seqs)
        stamps = [n.order for n in a + b]
        assert stamps == sorted(stamps) and len(set(stamps)) == 4


class TestGraphExecution:
    def test_drain_marks_done_and_orders_results(self):
        p = _predictor()
        nodes = p.scheduler.sequence_nodes(p._naturals(_images(4), None))
        assert not any(n.done for n in nodes)
        results = p.scheduler.drain(nodes)
        assert all(n.done for n in nodes)
        for node, res in zip(nodes, results):
            assert res is node.result

    def test_execute_matches_predict_batch(self):
        model = _model()
        imgs = _images(4)
        ref = _predictor(model).predict_batch(imgs)
        p = _predictor(model)
        got = p.scheduler.execute(p._naturals(imgs, None))
        for a, b in zip(ref, got):
            np.testing.assert_array_equal(a, b)

    def test_stats_match_legacy_accounting(self):
        p = _predictor()
        p.predict_batch(_images(5))
        s = p.stats
        assert s["images"] == 5
        assert s["batches"] >= 2               # 5 images at max_batch=3
        assert s["plans"] == len(p._plans) > 0
        assert s["real_tokens"] <= s["padded_tokens"]


class TestTileNodes:
    def test_image_tile_has_one_child(self):
        p = _predictor()
        node = p.scheduler.tile_node(_images(1)[0], "image")
        assert node.kind == "image"
        assert len(node.children) == 1
        assert not node.done
        p.scheduler.drain(node.children)
        assert node.done
        np.testing.assert_array_equal(
            p.scheduler.reduce_tile(node),
            class_map(node.children[0].result))

    def test_volume_tile_expands_per_slice(self):
        vol = generate_ct_volume(32, 5, seed=1).volume
        model = _model()
        p = _predictor(model)
        node = p.scheduler.tile_node(vol, "volume")
        assert node.kind == "volume"
        assert len(node.children) == vol.shape[0]
        p.scheduler.drain(node.children)
        got = p.scheduler.reduce_tile(node)
        ref = _predictor(model).predict_volume(vol)
        np.testing.assert_array_equal(got, ref)


class TestClassMap:
    def test_single_channel_threshold(self):
        probs = np.array([[[0.2, 0.5], [0.7, 0.49]]])
        np.testing.assert_array_equal(class_map(probs), [[0, 1], [1, 0]])
        assert class_map(probs).dtype == np.int64

    def test_multichannel_argmax(self):
        probs = np.random.default_rng(0).random((3, 4, 4))
        np.testing.assert_array_equal(class_map(probs), probs.argmax(axis=0))
