"""Ulysses-style sequence parallelism — a reference implementation.

The paper contrasts APF with sequence-parallel systems (DeepSpeed Ulysses,
LightSeq, RingAttention): they scale the *memory* of long sequences across
GPUs but do not reduce total work. This module implements the Ulysses
schedule over simulated ranks so the comparison in the benchmarks is against
real algorithm semantics:

1. Each rank holds a sequence shard of Q/K/V for all heads.
2. All-to-all #1 re-shards so each rank holds the *full* sequence for
   ``heads / world`` heads.
3. Dense attention per rank (unchanged math).
4. All-to-all #2 restores sequence sharding of the output.

The test-suite asserts bit-level equivalence with single-device attention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["ulysses_attention", "UlyssesReport"]


@dataclass
class UlyssesReport:
    """Traffic accounting for one Ulysses attention call."""

    all_to_all_bytes_per_rank: float
    flops_per_rank: float


def _dense_attention(q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
    """(H, N, Dh) dense softmax attention."""
    dh = q.shape[-1]
    scores = q @ np.swapaxes(k, -1, -2) / np.sqrt(dh)
    scores -= scores.max(axis=-1, keepdims=True)
    e = np.exp(scores)
    attn = e / e.sum(axis=-1, keepdims=True)
    return attn @ v


def ulysses_attention(q: np.ndarray, k: np.ndarray, v: np.ndarray,
                      world_size: int) -> Tuple[np.ndarray, UlyssesReport]:
    """Multi-head attention computed with the Ulysses schedule.

    Parameters
    ----------
    q, k, v:
        (H, N, Dh) arrays. ``H`` and ``N`` must divide by ``world_size``.

    Returns
    -------
    output:
        (H, N, Dh), numerically identical to dense attention.
    report:
        Per-rank all-to-all traffic and attention FLOPs.
    """
    h, n, dh = q.shape
    if world_size < 1:
        raise ValueError("world_size must be >= 1")
    if h % world_size or n % world_size:
        raise ValueError(f"heads ({h}) and sequence ({n}) must divide by "
                         f"world size ({world_size})")
    w = world_size
    if w == 1:
        out = _dense_attention(q, k, v)
        return out, UlyssesReport(0.0, 4.0 * h * n * n * dh)

    seq_shard = n // w
    head_shard = h // w
    # Initial layout: rank r holds [:, r*seq_shard:(r+1)*seq_shard, :].
    # All-to-all #1: rank r ends with heads [r*head_shard:(r+1)*head_shard]
    # over the full sequence — equivalent to a (w x w) block transpose.
    outputs = np.empty_like(q)
    for r in range(w):
        hq = q[r * head_shard:(r + 1) * head_shard]     # full seq, r's heads
        hk = k[r * head_shard:(r + 1) * head_shard]
        hv = v[r * head_shard:(r + 1) * head_shard]
        outputs[r * head_shard:(r + 1) * head_shard] = _dense_attention(hq, hk, hv)

    # Traffic: each rank exchanges (w-1)/w of its Q,K,V shard in a2a #1 and
    # the same fraction of the output in a2a #2.
    shard_bytes = 3 * head_shard * w * seq_shard * dh * q.itemsize
    a2a1 = shard_bytes * (w - 1) / w
    out_bytes = head_shard * w * seq_shard * dh * q.itemsize
    a2a2 = out_bytes * (w - 1) / w
    flops_per_rank = 4.0 * head_shard * n * n * dh
    return outputs, UlyssesReport(a2a1 + a2a2, flops_per_rank)
