"""Table I verification: APF's complexity behaviour plus substrate
microbenchmarks (quadtree build, Canny, Morton sort, attention, ring
all-reduce) — the per-component costs behind the headline numbers.
"""

import numpy as np

from repro import nn
from repro.data import generate_wsi
from repro.distributed import SimCluster
from repro.imaging import canny_edges, gaussian_blur
from repro.patching import AdaptivePatcher
from repro.quadtree import build_quadtree, morton_sort_order


class TestMicrobenches:
    def test_quadtree_build(self, benchmark):
        detail = (np.random.default_rng(0).random((512, 512)) > 0.97)
        leaves = benchmark(build_quadtree, detail.astype(float), 8.0, 7, 2)
        assert leaves.covers_exactly()

    def test_canny_512(self, benchmark):
        img = generate_wsi(512, seed=0).image.mean(axis=2)
        edges = benchmark(canny_edges, img)
        assert edges.shape == (512, 512)

    def test_gaussian_blur_512(self, benchmark):
        img = generate_wsi(512, seed=0).image.mean(axis=2)
        out = benchmark(gaussian_blur, img, 5)
        assert out.shape == (512, 512)

    def test_morton_sort_100k(self, benchmark):
        rng = np.random.default_rng(0)
        ys = rng.integers(0, 2 ** 16, 100_000)
        xs = rng.integers(0, 2 ** 16, 100_000)
        order = benchmark(morton_sort_order, ys, xs)
        assert len(order) == 100_000

    def test_apf_pipeline_512(self, benchmark):
        img = generate_wsi(512, seed=0).image
        patcher = AdaptivePatcher(patch_size=4, split_value=8.0)
        seq = benchmark(patcher.extract, img)
        assert len(seq) < (512 // 4) ** 2

    def test_attention_forward_backward(self, benchmark):
        mha = nn.MultiHeadAttention(64, 4)
        x_data = np.random.default_rng(0).normal(
            size=(1, 256, 64)).astype(np.float32)

        def step():
            x = nn.Tensor(x_data, requires_grad=True)
            y = mha(x)
            (y * y).mean().backward()
            return x.grad

        g = benchmark(step)
        assert np.isfinite(g).all()

    def test_ring_allreduce_8x1m(self, benchmark):
        bufs = [np.ones(1_000_000) for _ in range(8)]
        cluster = SimCluster(8)
        out, _ = benchmark(cluster.ring_all_reduce, bufs)
        assert out[0][0] == 8.0


class TestComplexityShape:
    def test_apf_preprocess_scales_subquadratically_in_pixels(self, once):
        """Build time is dominated by the O(Z^2) integral image + Canny, so
        doubling resolution must cost ~4x, not the O((Z/P)^4) of attention."""
        import time

        def measure():
            times = {}
            for z in (128, 256, 512):
                img = generate_wsi(z, seed=0).image
                patcher = AdaptivePatcher(patch_size=4, split_value=8.0)
                t0 = time.perf_counter()
                for _ in range(3):
                    patcher(img)
                times[z] = (time.perf_counter() - t0) / 3
            return times

        times = once(measure)
        print(f"\nAPF preprocess seconds/image: "
              f"{ {z: round(t, 4) for z, t in times.items()} }")
        ratio = times[512] / times[128]
        assert ratio < 16 * 4  # far below quartic growth (256x)

    def test_sequence_growth_sublinear_in_uniform_budget(self, once):
        """Paper §III-A: APF sequence grows far slower than (Z/P)^2."""
        def measure():
            out = {}
            for z in (64, 128, 256):
                lens = [len(AdaptivePatcher(patch_size=4, split_value=8.0)(
                    generate_wsi(z, seed=i).image)) for i in range(3)]
                out[z] = float(np.mean(lens))
            return out

        lens = once(measure)
        print(f"\nAPF sequence length by resolution: {lens}")
        uniform_growth = (256 / 64) ** 2  # 16x budget growth
        apf_growth = lens[256] / lens[64]
        assert apf_growth < uniform_growth
