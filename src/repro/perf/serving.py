"""Serving capacity planning — batch-server throughput/utilization math.

Companion to the α–β training cost model (:mod:`.costmodel`), but for the
inference engine: given a service-time model with the batch-server shape
``cost(B, L) = a + B * (L*b + c)`` (fixed per-dispatch overhead plus
per-item work — :class:`repro.serve.loadgen.ServiceModel` or anything
duck-typed like it), these helpers answer the questions an operator sizes
an engine with: what is the saturated throughput at a given batch size,
how much of it does an offered load consume, and what does batching buy
over serial dispatch. The load benchmark records them next to its measured
numbers so the JSON is self-interpreting.
"""

from __future__ import annotations

__all__ = ["engine_capacity", "serial_capacity", "batching_speedup_bound",
           "utilization"]


def engine_capacity(service_model, max_batch: int, length: int) -> float:
    """Saturated throughput (requests/s) of a batch server running full
    ``max_batch`` flushes of ``length``-token requests back to back."""
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    return max_batch / service_model.cost(max_batch, length)


def serial_capacity(service_model, length: int) -> float:
    """Saturated throughput of the unbatched one-at-a-time baseline."""
    return 1.0 / service_model.cost(1, length)


def batching_speedup_bound(service_model, max_batch: int,
                           length: int) -> float:
    """Upper bound on the engine/serial throughput ratio at saturation:
    ``(a + s) / (a/B + s)`` with per-item seconds ``s`` — what amortizing
    the fixed dispatch overhead ``a`` over ``B`` requests can buy."""
    return (engine_capacity(service_model, max_batch, length)
            / serial_capacity(service_model, length))


def utilization(offered_rate: float, capacity: float) -> float:
    """Offered load as a fraction of capacity (>1 means overload)."""
    if offered_rate < 0 or capacity <= 0:
        raise ValueError("need offered_rate >= 0 and capacity > 0")
    return offered_rate / capacity
