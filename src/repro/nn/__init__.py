"""``repro.nn`` — a from-scratch NumPy autograd + NN substrate.

This package substitutes for PyTorch in the APF reproduction (see DESIGN.md
section 1). Public surface:

* :mod:`repro.nn.tensor` — :class:`Tensor`, :func:`no_grad`, graph combinators
* :mod:`repro.nn.functional` — conv/pool/softmax/layernorm primitives
* :mod:`repro.nn.modules` — ``Module`` hierarchy (Linear ... TransformerEncoder)
* :mod:`repro.nn.optim` — SGD/Adam/AdamW + LR schedulers
* :mod:`repro.nn.losses` — BCE + dice (paper Eq. 7-9), cross-entropy
"""

from . import functional, kernels
from .losses import (bce_loss, combined_bce_dice, cross_entropy, dice_loss,
                     multiclass_dice_loss)
from .modules import (MLP, BatchNorm2d, Conv2d, ConvTranspose2d, Dropout,
                      GroupNorm, Identity, LayerNorm, Linear, Module,
                      ModuleList, MultiHeadAttention, Parameter, Sequential,
                      TransformerEncoder, TransformerEncoderLayer,
                      attention_bias)
from .optim import SGD, Adam, AdamW, CosineLR, MultiStepLR, clip_grad_norm
from .tensor import Tensor, concat, is_grad_enabled, no_grad, ones, stack, tensor, zeros

__all__ = [
    "Tensor", "no_grad", "is_grad_enabled", "tensor", "zeros", "ones",
    "concat", "stack", "functional", "kernels", "attention_bias",
    "Parameter", "Module", "Sequential", "ModuleList", "Identity", "Linear",
    "Dropout", "LayerNorm", "Conv2d", "ConvTranspose2d", "BatchNorm2d",
    "GroupNorm", "MultiHeadAttention", "MLP", "TransformerEncoderLayer",
    "TransformerEncoder",
    "SGD", "Adam", "AdamW", "MultiStepLR", "CosineLR", "clip_grad_norm",
    "bce_loss", "dice_loss", "combined_bce_dice", "cross_entropy",
    "multiclass_dice_loss",
]
