"""End-to-end batched pipeline demo: dataset -> PatchPipeline -> trainer.

Shows the three pipeline wins in one script:
1. batched preprocessing (bit-identical to the per-image reference),
2. the LRU cache amortizing patching across epochs (Algorithm 1),
3. training from pre-collated (B, L, C*Pm^2) batches via ``fit_loader``.

Run:  PYTHONPATH=src python examples/batched_pipeline.py
"""

import time

import numpy as np

from repro import nn
from repro.data import DataLoader, SyntheticPAIP
from repro.models import ViTSegmenter
from repro.patching import AdaptivePatcher
from repro.pipeline import PatchPipeline
from repro.train import TokenSegmentationTask, Trainer

RES, N_IMAGES, EPOCHS = 128, 12, 3


def main():
    ds = SyntheticPAIP(RES, N_IMAGES)
    pipe = PatchPipeline(patch_size=4, split_value=8.0, target_length=256,
                         cache_items=64, channels=1)

    # -- 1. throughput: reference loop vs pipeline over EPOCHS passes ----
    imgs = [ds[i].image for i in range(N_IMAGES)]
    ref = AdaptivePatcher(pipe.config)
    t0 = time.perf_counter()
    for _ in range(EPOCHS):
        for im in imgs:
            ref.extract_natural(im)
    t_single = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(EPOCHS):
        pipe.process(imgs, keys=list(range(N_IMAGES)))
    t_pipe = time.perf_counter() - t0
    total = EPOCHS * N_IMAGES
    print(f"single loop : {total / t_single:6.1f} images/sec")
    print(f"pipeline    : {total / t_pipe:6.1f} images/sec "
          f"({t_single / t_pipe:.1f}x, cache {pipe.stats['hits']} hits / "
          f"{pipe.stats['misses']} misses)")

    # -- 2. training from pre-collated batches ---------------------------
    loader = DataLoader(ds, batch_size=4, shuffle=True, pipeline=pipe)
    model = ViTSegmenter(patch_size=4, channels=1, dim=32, depth=2, heads=4,
                         max_len=256)
    task = TokenSegmentationTask(model, pipe, channels=1)
    trainer = Trainer(task, nn.Adam(task.parameters(), lr=1e-3))
    history = trainer.fit_loader(loader, [ds[0], ds[1]], epochs=2)
    print(f"trained 2 epochs: train loss {history.train_loss[-1]:.4f}, "
          f"val dice {history.val_metric[-1]:.1f}%")
    print(f"pipeline stats after training: {pipe.stats}")

    # -- 3. inference reuses the cached natural sequence -----------------
    probs = task.predict_probs(ds[0])
    print(f"predicted mask shape {probs.shape}, "
          f"mean prob {float(np.mean(probs)):.3f}")


if __name__ == "__main__":
    main()
