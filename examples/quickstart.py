#!/usr/bin/env python
"""Quickstart: adaptive patching in five minutes.

Generates one synthetic pathology image, runs the Adaptive Patch Framework
(paper Fig. 1 pipeline), shows the sequence reduction, trains a small ViT
segmenter on APF tokens, and prints the predicted mask.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import nn
from repro.data import generate_wsi
from repro.experiments import ascii_mask
from repro.metrics import dice_score
from repro.models import ViTSegmenter
from repro.patching import AdaptivePatcher, UniformPatcher


def main() -> None:
    # --- 1. data -----------------------------------------------------------
    sample = generate_wsi(resolution=64, seed=0)
    gray = sample.image.mean(axis=2)
    print(f"image {gray.shape}, lesion covers {sample.mask.mean():.1%}")

    # --- 2. adaptive patching (the paper's contribution) --------------------
    patcher = AdaptivePatcher(patch_size=4, split_value=2.0)
    seq = patcher(gray)
    uniform = UniformPatcher(4)(gray)
    print(f"uniform patches : {len(uniform)}")
    print(f"adaptive patches: {len(seq)}  "
          f"({len(uniform) / len(seq):.1f}x sequence reduction, "
          f"{(len(uniform) / len(seq)) ** 2:.0f}x attention reduction)")
    print(f"patch size histogram: "
          f"{dict(zip(*np.unique(seq.sizes, return_counts=True)))}")

    # --- 3. train a ViT segmenter on the adaptive tokens --------------------
    model = ViTSegmenter(patch_size=4, channels=1, dim=32, depth=2, heads=2,
                         max_len=256, rng=np.random.default_rng(1))
    opt = nn.AdamW(model.parameters(), lr=3e-3)
    targets = patcher.patchify_labels(sample.mask, seq).reshape(1, len(seq), -1)
    for epoch in range(30):
        opt.zero_grad()
        logits = model.forward_sequences([seq])
        loss = nn.combined_bce_dice(logits, targets)
        loss.backward()
        opt.step()
        if epoch % 10 == 9:
            print(f"epoch {epoch + 1:2d}  loss {float(loss.data):.4f}")

    # --- 4. reconstruct the full-resolution prediction ----------------------
    probs = model.predict_mask(seq)[0]
    print(f"dice vs ground truth: {dice_score(probs, sample.mask):.1f}%")
    print("\nground truth            prediction")
    gt_lines = ascii_mask(sample.mask, width=24).splitlines()
    pr_lines = ascii_mask(probs > 0.5, width=24).splitlines()
    for a, b in zip(gt_lines, pr_lines):
        print(f"{a}  {b}")


if __name__ == "__main__":
    main()
