"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the PyTorch substitute for the APF reproduction: a
define-by-run autograd engine whose :class:`Tensor` wraps a ``numpy.ndarray``
and records a tape of parent links plus a backward closure per operation.
``Tensor.backward()`` topologically sorts the tape and accumulates gradients.

Design notes
------------
* All elementwise binary ops support full NumPy broadcasting; gradients are
  reduced back to each operand's shape with :func:`_unbroadcast`.
* dtype is preserved: float64 tensors give float64 gradients, which is what
  the finite-difference gradient checks in the test-suite rely on.
* No in-place mutation of ``data`` after an op is recorded; the engine
  assumes value semantics (enforced by convention, as NumPy views are cheap).
* Every forward value is produced by the kernel dispatch table
  (:mod:`repro.nn.kernels`) and every op notifies the table's trace hook, so
  the compiled executor in :mod:`repro.runtime` replays numerically
  identical computations from the same kernels.
* Grad mode is **thread-local**: ``no_grad`` in one pipeline worker thread
  cannot disable tape construction in another.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from . import kernels as K

Arrayish = Union["Tensor", np.ndarray, float, int]

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "tensor", "zeros", "ones"]


class _GradMode(threading.local):
    """Per-thread flag gating tape construction (mirrors torch.no_grad).

    Reading ``enabled`` before any write in a thread falls through to the
    class attribute, so every thread starts with gradients enabled; writes
    land in the thread's own instance dict.
    """

    enabled: bool = True


_grad_mode = _GradMode()


class no_grad:
    """Context manager that disables gradient tracking inside its block
    (for the current thread only)."""

    def __enter__(self) -> "no_grad":
        self._prev = _grad_mode.enabled
        _grad_mode.enabled = False
        return self

    def __exit__(self, *exc) -> None:
        _grad_mode.enabled = self._prev


def is_grad_enabled() -> bool:
    return _grad_mode.enabled


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (shape produced by broadcasting) back to ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts. Floating inputs keep their dtype;
        python scalars/ints become float32.
    requires_grad:
        Whether this tensor is a leaf that accumulates ``.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        arr = np.asarray(data)
        if arr.dtype.kind in ("i", "u", "b"):
            arr = arr.astype(np.float32)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _grad_mode.enabled
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def astype(self, dtype) -> "Tensor":
        out = self._make(K.forward("astype", (dtype,), self.data), (self,))
        if out.requires_grad:
            src_dtype = self.data.dtype

            def _bw(g: np.ndarray) -> None:
                self._accum(g.astype(src_dtype))

            out._backward = _bw
        K.record("astype", (dtype,), (self,), out)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # tape plumbing
    # ------------------------------------------------------------------
    def _make(self, data: np.ndarray, parents: Tuple["Tensor", ...]) -> "Tensor":
        """Create an op output linked to ``parents`` when grad is enabled."""
        req = _grad_mode.enabled and any(p.requires_grad for p in parents)
        out = Tensor(data)
        out.requires_grad = req
        if req:
            out._parents = tuple(p for p in parents if p.requires_grad)
        return out

    def _accum(self, g: np.ndarray) -> None:
        """Accumulate ``g`` into ``self.grad`` (allocating on first use)."""
        if self.grad is None:
            self.grad = g.copy() if isinstance(g, np.ndarray) else np.asarray(g)
        else:
            self.grad += g

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)

        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in visited:
                    stack.append((p, False))

        self._accum(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Interior nodes don't need to retain grads; free memory.
                if node._parents and node is not self:
                    node.grad = None
        # Clear interior closures so the graph can be GC'd.
        for node in topo:
            if node is not self and node._parents:
                node._backward = None
                node._parents = ()

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # elementwise arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(x: Arrayish) -> "Tensor":
        return x if isinstance(x, Tensor) else Tensor(np.asarray(x))

    def __add__(self, other: Arrayish) -> "Tensor":
        other = self._coerce(other)
        out = self._make(K.forward("add", (), self.data, other.data),
                         (self, other))
        if out.requires_grad:
            a, b = self, other

            def _bw(g: np.ndarray) -> None:
                if a.requires_grad:
                    a._accum(_unbroadcast(g, a.shape))
                if b.requires_grad:
                    b._accum(_unbroadcast(g, b.shape))

            out._backward = _bw
        K.record("add", (), (self, other), out)
        return out

    __radd__ = __add__

    def __sub__(self, other: Arrayish) -> "Tensor":
        other = self._coerce(other)
        out = self._make(K.forward("sub", (), self.data, other.data),
                         (self, other))
        if out.requires_grad:
            a, b = self, other

            def _bw(g: np.ndarray) -> None:
                if a.requires_grad:
                    a._accum(_unbroadcast(g, a.shape))
                if b.requires_grad:
                    b._accum(_unbroadcast(-g, b.shape))

            out._backward = _bw
        K.record("sub", (), (self, other), out)
        return out

    def __rsub__(self, other: Arrayish) -> "Tensor":
        return self._coerce(other) - self

    def __neg__(self) -> "Tensor":
        out = self._make(K.forward("neg", (), self.data), (self,))
        if out.requires_grad:
            a = self

            def _bw(g: np.ndarray) -> None:
                a._accum(-g)

            out._backward = _bw
        K.record("neg", (), (self,), out)
        return out

    def __mul__(self, other: Arrayish) -> "Tensor":
        other = self._coerce(other)
        out = self._make(K.forward("mul", (), self.data, other.data),
                         (self, other))
        if out.requires_grad:
            a, b = self, other

            def _bw(g: np.ndarray) -> None:
                if a.requires_grad:
                    a._accum(_unbroadcast(g * b.data, a.shape))
                if b.requires_grad:
                    b._accum(_unbroadcast(g * a.data, b.shape))

            out._backward = _bw
        K.record("mul", (), (self, other), out)
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: Arrayish) -> "Tensor":
        other = self._coerce(other)
        out = self._make(K.forward("div", (), self.data, other.data),
                         (self, other))
        if out.requires_grad:
            a, b = self, other

            def _bw(g: np.ndarray) -> None:
                if a.requires_grad:
                    a._accum(_unbroadcast(g / b.data, a.shape))
                if b.requires_grad:
                    b._accum(_unbroadcast(-g * a.data / (b.data * b.data), b.shape))

            out._backward = _bw
        K.record("div", (), (self, other), out)
        return out

    def __rtruediv__(self, other: Arrayish) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, p: float) -> "Tensor":
        if not np.isscalar(p):
            raise TypeError("Tensor.__pow__ supports scalar exponents only")
        out = self._make(K.forward("pow", (p,), self.data), (self,))
        if out.requires_grad:
            a = self

            def _bw(g: np.ndarray) -> None:
                a._accum(g * p * (a.data ** (p - 1)))

            out._backward = _bw
        K.record("pow", (p,), (self,), out)
        return out

    # ------------------------------------------------------------------
    # transcendental / nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        val = K.forward("exp", (), self.data)
        out = self._make(val, (self,))
        if out.requires_grad:
            a = self

            def _bw(g: np.ndarray) -> None:
                a._accum(g * val)

            out._backward = _bw
        K.record("exp", (), (self,), out)
        return out

    def log(self) -> "Tensor":
        out = self._make(K.forward("log", (), self.data), (self,))
        if out.requires_grad:
            a = self

            def _bw(g: np.ndarray) -> None:
                a._accum(g / a.data)

            out._backward = _bw
        K.record("log", (), (self,), out)
        return out

    def sqrt(self) -> "Tensor":
        val = K.forward("sqrt", (), self.data)
        out = self._make(val, (self,))
        if out.requires_grad:
            a = self

            def _bw(g: np.ndarray) -> None:
                a._accum(g * 0.5 / val)

            out._backward = _bw
        K.record("sqrt", (), (self,), out)
        return out

    def tanh(self) -> "Tensor":
        val = K.forward("tanh", (), self.data)
        out = self._make(val, (self,))
        if out.requires_grad:
            a = self

            def _bw(g: np.ndarray) -> None:
                a._accum(g * (1.0 - val * val))

            out._backward = _bw
        K.record("tanh", (), (self,), out)
        return out

    def sigmoid(self) -> "Tensor":
        val = K.forward("sigmoid", (), self.data)
        out = self._make(val, (self,))
        if out.requires_grad:
            a = self

            def _bw(g: np.ndarray) -> None:
                a._accum(g * val * (1.0 - val))

            out._backward = _bw
        K.record("sigmoid", (), (self,), out)
        return out

    def relu(self) -> "Tensor":
        out = self._make(K.forward("relu", (), self.data), (self,))
        if out.requires_grad:
            a = self

            def _bw(g: np.ndarray) -> None:
                a._accum(g * (a.data > 0))

            out._backward = _bw
        K.record("relu", (), (self,), out)
        return out

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation, as in ViT)."""
        x = self.data
        c, t = K._gelu_constants(x)
        val = 0.5 * x * (1.0 + t)
        out = self._make(val.astype(x.dtype, copy=False), (self,))
        if out.requires_grad:
            a = self

            def _bw(g: np.ndarray) -> None:
                dt = (1.0 - t * t) * c * (1.0 + 3 * 0.044715 * x ** 2)
                a._accum(g * (0.5 * (1.0 + t) + 0.5 * x * dt))

            out._backward = _bw
        K.record("gelu", (), (self,), out)
        return out

    def clip(self, lo: float, hi: float) -> "Tensor":
        out = self._make(K.forward("clip", (lo, hi), self.data), (self,))
        if out.requires_grad:
            a = self

            def _bw(g: np.ndarray) -> None:
                a._accum(g * ((a.data >= lo) & (a.data <= hi)))

            out._backward = _bw
        K.record("clip", (lo, hi), (self,), out)
        return out

    def abs(self) -> "Tensor":
        out = self._make(K.forward("abs", (), self.data), (self,))
        if out.requires_grad:
            a = self

            def _bw(g: np.ndarray) -> None:
                a._accum(g * np.sign(a.data))

            out._backward = _bw
        K.record("abs", (), (self,), out)
        return out

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self._make(K.forward("sum", (axis, keepdims), self.data), (self,))
        if out.requires_grad:
            a = self
            in_shape = self.shape

            def _bw(g: np.ndarray) -> None:
                gg = g
                if not keepdims and axis is not None:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    axes = tuple(ax % len(in_shape) for ax in axes)
                    for ax in sorted(axes):
                        gg = np.expand_dims(gg, ax)
                a._accum(np.broadcast_to(gg, in_shape).astype(a.data.dtype, copy=False) * np.ones(1, dtype=a.data.dtype))

            out._backward = _bw
        K.record("sum", (axis, keepdims), (self,), out)
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            n = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            n = int(np.prod([self.shape[ax] for ax in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / n)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        d = self - mu
        return (d * d).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self._make(np.asarray(K.forward("max", (axis, keepdims),
                                              self.data)), (self,))
        if out.requires_grad:
            a = self
            # Rebuild the keepdims view of the kernel result instead of
            # paying a second O(n) reduction for the backward mask.
            if keepdims:
                val = out.data
            elif axis is None:
                val = out.data.reshape((1,) * self.data.ndim)
            else:
                axes = axis if isinstance(axis, tuple) else (axis,)
                val = out.data
                for ax in sorted(x % self.data.ndim for x in axes):
                    val = np.expand_dims(val, ax)
            mask = (self.data == val)
            counts = mask.sum(axis=axis, keepdims=True)

            def _bw(g: np.ndarray) -> None:
                gg = g
                if not keepdims and axis is not None:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    axes = tuple(ax % a.data.ndim for ax in axes)
                    for ax in sorted(axes):
                        gg = np.expand_dims(gg, ax)
                elif not keepdims and axis is None:
                    gg = np.reshape(gg, (1,) * a.data.ndim)
                a._accum(mask * (gg / counts))

            out._backward = _bw
        K.record("max", (axis, keepdims), (self,), out)
        return out

    # ------------------------------------------------------------------
    # shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make(K.forward("reshape", (shape,), self.data), (self,))
        if out.requires_grad:
            a = self
            orig = self.shape

            def _bw(g: np.ndarray) -> None:
                a._accum(g.reshape(orig))

            out._backward = _bw
        K.record("reshape", (shape,), (self,), out)
        return out

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out = self._make(K.forward("transpose", (axes,), self.data), (self,))
        if out.requires_grad:
            a = self
            inv = tuple(np.argsort(axes))

            def _bw(g: np.ndarray) -> None:
                a._accum(g.transpose(inv))

            out._backward = _bw
        K.record("transpose", (axes,), (self,), out)
        return out

    def swapaxes(self, a1: int, a2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a1], axes[a2] = axes[a2], axes[a1]
        return self.transpose(tuple(axes))

    def __getitem__(self, idx) -> "Tensor":
        out = self._make(K.forward("getitem", (idx,), self.data), (self,))
        if out.requires_grad:
            a = self

            def _bw(g: np.ndarray) -> None:
                full = np.zeros_like(a.data)
                np.add.at(full, idx, g)
                a._accum(full)

            out._backward = _bw
        K.record("getitem", (idx,), (self,), out)
        return out

    # ------------------------------------------------------------------
    # linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        out = self._make(K.forward("matmul", (), self.data, other.data),
                         (self, other))
        if out.requires_grad:
            a, b = self, other

            def _bw(g: np.ndarray) -> None:
                if a.requires_grad:
                    if b.data.ndim == 1:
                        ga = np.multiply.outer(g, b.data) if a.data.ndim == 1 else g[..., None] * b.data
                    else:
                        ga = g @ np.swapaxes(b.data, -1, -2)
                    a._accum(_unbroadcast(ga, a.shape))
                if b.requires_grad:
                    if a.data.ndim == 1:
                        gb = np.multiply.outer(a.data, g)
                    else:
                        gb = np.swapaxes(a.data, -1, -2) @ g
                    b._accum(_unbroadcast(gb, b.shape))

            out._backward = _bw
        K.record("matmul", (), (self, other), out)
        return out

    __matmul__ = matmul

    # ------------------------------------------------------------------
    # comparisons (no-grad)
    # ------------------------------------------------------------------
    def __gt__(self, other: Arrayish) -> np.ndarray:
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other: Arrayish) -> np.ndarray:
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other


# ----------------------------------------------------------------------
# free-function constructors & graph combinators
# ----------------------------------------------------------------------

def tensor(data, requires_grad: bool = False) -> Tensor:
    """Construct a :class:`Tensor` (convenience mirror of ``torch.tensor``)."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape, dtype=np.float32, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)


def ones(shape, dtype=np.float32, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [Tensor._coerce(t) for t in tensors]
    data = K.forward("concat", (axis,), *[t.data for t in tensors])
    out = tensors[0]._make(data, tuple(tensors))
    if out.requires_grad:
        sizes = [t.shape[axis] for t in tensors]
        splits = np.cumsum(sizes)[:-1]
        parts = tensors

        def _bw(g: np.ndarray) -> None:
            for t, gpart in zip(parts, np.split(g, splits, axis=axis)):
                if t.requires_grad:
                    t._accum(gpart)

        out._backward = _bw
    K.record("concat", (axis,), tuple(tensors), out)
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient routing."""
    tensors = [Tensor._coerce(t) for t in tensors]
    data = K.forward("stack", (axis,), *[t.data for t in tensors])
    out = tensors[0]._make(data, tuple(tensors))
    if out.requires_grad:
        parts = tensors

        def _bw(g: np.ndarray) -> None:
            for i, t in enumerate(parts):
                if t.requires_grad:
                    t._accum(np.take(g, i, axis=axis))

        out._backward = _bw
    K.record("stack", (axis,), tuple(tensors), out)
    return out
