"""Neural-network functional ops on :class:`repro.nn.tensor.Tensor`.

Implements the structured ops the APF model zoo needs: im2col-based 2-D
convolution / transposed convolution, non-overlapping max pooling, softmax,
layer normalization, nearest-neighbour upsampling and dropout. All forward
paths are fully vectorized NumPy (no Python loops over pixels), per the
HPC-Python guides; backward paths use precomputed gather/scatter index maps.

Forward values route through the kernel dispatch table
(:mod:`repro.nn.kernels`): the structured kernels are registered here (next
to their backward closures) so the compiled executor replays the exact same
arithmetic, and every op notifies the trace hook.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import kernels as K
from .tensor import Tensor, _unbroadcast

__all__ = [
    "conv2d",
    "conv_transpose2d",
    "max_pool2d",
    "avg_pool2d",
    "softmax",
    "log_softmax",
    "layer_norm",
    "upsample_nearest2d",
    "dropout",
]


# ----------------------------------------------------------------------
# im2col machinery
# ----------------------------------------------------------------------

def _im2col_indices(channels: int, height: int, width: int, kh: int, kw: int,
                    stride: int, pad: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Index maps turning a padded NCHW image into (C*kh*kw, Ho*Wo) columns."""
    ho = (height + 2 * pad - kh) // stride + 1
    wo = (width + 2 * pad - kw) // stride + 1
    i0 = np.tile(np.repeat(np.arange(kh), kw), channels)
    i1 = stride * np.repeat(np.arange(ho), wo)
    j0 = np.tile(np.arange(kw), kh * channels)
    j1 = stride * np.tile(np.arange(wo), ho)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kh * kw).reshape(-1, 1)
    return k, i, j, ho, wo


def _conv2d_forward(params, x: np.ndarray, weight: np.ndarray,
                    bias: Optional[np.ndarray] = None):
    """Shared conv2d forward: returns (out, residuals-for-backward)."""
    stride, padding = params
    n, c, h, w = x.shape
    o, c2, kh, kw = weight.shape
    if c != c2:
        raise ValueError(f"conv2d channel mismatch: input {c} vs weight {c2}")
    k, i, j, ho, wo = _im2col_indices(c, h, w, kh, kw, stride, padding)
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding))) if padding else x
    cols = xp[:, k, i, j]                                   # (N, C*kh*kw, Ho*Wo)
    wmat = weight.reshape(o, -1)                             # (O, C*kh*kw)
    out_data = np.einsum("ok,nkp->nop", wmat, cols, optimize=True)
    if bias is not None:
        out_data = out_data + bias.reshape(1, o, 1)
    out_data = out_data.reshape(n, o, ho, wo)
    return out_data, (cols, wmat, k, i, j, ho, wo)


K.register("conv2d", lambda p, *arrs: _conv2d_forward(p, *arrs)[0])


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution. ``x``: (N,C,H,W); ``weight``: (O,C,kh,kw)."""
    n, c, h, w = x.shape
    params = (stride, padding)
    out_data, (cols, wmat, k, i, j, ho, wo) = _conv2d_forward(
        params, x.data, weight.data, bias.data if bias is not None else None)

    parents = (x, weight) + ((bias,) if bias is not None else ())
    out = x._make(out_data, parents)
    if out.requires_grad:
        o = weight.shape[0]

        def _bw(g: np.ndarray) -> None:
            gflat = g.reshape(n, o, ho * wo)
            if bias is not None and bias.requires_grad:
                bias._accum(gflat.sum(axis=(0, 2)))
            if weight.requires_grad:
                gw = np.einsum("nop,nkp->ok", gflat, cols, optimize=True)
                weight._accum(gw.reshape(weight.shape))
            if x.requires_grad:
                gcols = np.einsum("ok,nop->nkp", wmat, gflat, optimize=True)
                gxp = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=g.dtype)
                np.add.at(gxp, (slice(None), k, i, j), gcols)
                if padding:
                    gxp = gxp[:, :, padding:-padding, padding:-padding]
                x._accum(gxp)

        out._backward = _bw
    K.record("conv2d", params, parents, out)
    return out


def _conv_transpose2d_forward(params, x: np.ndarray, weight: np.ndarray,
                              bias: Optional[np.ndarray] = None):
    """Shared conv-transpose forward: returns (out, residuals-for-backward)."""
    stride, padding = params
    n, cin, h, w = x.shape
    cin2, cout, kh, kw = weight.shape
    if cin != cin2:
        raise ValueError(f"conv_transpose2d channel mismatch: {cin} vs {cin2}")
    ho = (h - 1) * stride - 2 * padding + kh
    wo = (w - 1) * stride - 2 * padding + kw
    # The scatter pattern of conv-transpose is exactly the im2col gather of a
    # conv with the *output* as image and the input as the column grid.
    k, i, j, h_chk, w_chk = _im2col_indices(cout, ho, wo, kh, kw, stride, padding)
    assert (h_chk, w_chk) == (h, w), "conv_transpose2d geometry mismatch"
    wmat = weight.reshape(cin, cout * kh * kw)               # (Cin, Cout*kh*kw)
    xflat = x.reshape(n, cin, h * w)
    cols = np.einsum("ck,ncp->nkp", wmat, xflat, optimize=True)  # (N, Cout*kh*kw, H*W)
    outp = np.zeros((n, cout, ho + 2 * padding, wo + 2 * padding), dtype=x.dtype)
    np.add.at(outp, (slice(None), k, i, j), cols)
    out_data = outp[:, :, padding:ho + padding, padding:wo + padding] if padding else outp
    if bias is not None:
        out_data = out_data + bias.reshape(1, cout, 1, 1)
    return np.ascontiguousarray(out_data), (wmat, xflat, k, i, j)


K.register("conv_transpose2d",
           lambda p, *arrs: _conv_transpose2d_forward(p, *arrs)[0])


def conv_transpose2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
                     stride: int = 1, padding: int = 0) -> Tensor:
    """2-D transposed convolution. ``x``: (N,Cin,H,W); ``weight``: (Cin,Cout,kh,kw).

    Output spatial size: ``(H-1)*stride - 2*padding + k``.
    """
    n, cin, h, w = x.shape
    params = (stride, padding)
    out_data, (wmat, xflat, k, i, j) = _conv_transpose2d_forward(
        params, x.data, weight.data, bias.data if bias is not None else None)

    parents = (x, weight) + ((bias,) if bias is not None else ())
    out = x._make(out_data, parents)
    if out.requires_grad:
        def _bw(g: np.ndarray) -> None:
            if bias is not None and bias.requires_grad:
                bias._accum(g.sum(axis=(0, 2, 3)))
            gp = np.pad(g, ((0, 0), (0, 0), (padding, padding), (padding, padding))) if padding else g
            gcols = gp[:, k, i, j]                           # (N, Cout*kh*kw, H*W)
            if weight.requires_grad:
                gw = np.einsum("ncp,nkp->ck", xflat, gcols, optimize=True)
                weight._accum(gw.reshape(weight.shape))
            if x.requires_grad:
                gx = np.einsum("ck,nkp->ncp", wmat, gcols, optimize=True)
                x._accum(gx.reshape(n, cin, h, w))

        out._backward = _bw
    K.record("conv_transpose2d", params, parents, out)
    return out


def _max_pool2d_forward(params, x: np.ndarray):
    kernel = params[0]
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"max_pool2d: spatial dims ({h},{w}) not divisible by {kernel}")
    ho, wo = h // kernel, w // kernel
    xb = x.reshape(n, c, ho, kernel, wo, kernel)
    return xb.max(axis=(3, 5)), xb


K.register("max_pool2d", lambda p, x: _max_pool2d_forward(p, x)[0])


def max_pool2d(x: Tensor, kernel: int = 2) -> Tensor:
    """Non-overlapping max pooling with ``stride == kernel`` (U-Net style)."""
    n, c, h, w = x.shape
    val, xb = _max_pool2d_forward((kernel,), x.data)
    out = x._make(val, (x,))
    if out.requires_grad:
        mask = xb == val[:, :, :, None, :, None]
        counts = mask.sum(axis=(3, 5), keepdims=True)

        def _bw(g: np.ndarray) -> None:
            gb = g[:, :, :, None, :, None] / counts
            x._accum((mask * gb).reshape(n, c, h, w))

        out._backward = _bw
    K.record("max_pool2d", (kernel,), (x,), out)
    return out


def _avg_pool2d_forward(params, x: np.ndarray):
    kernel = params[0]
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"avg_pool2d: spatial dims ({h},{w}) not divisible by {kernel}")
    ho, wo = h // kernel, w // kernel
    return x.reshape(n, c, ho, kernel, wo, kernel).mean(axis=(3, 5))


K.register("avg_pool2d", _avg_pool2d_forward)


def avg_pool2d(x: Tensor, kernel: int = 2) -> Tensor:
    """Non-overlapping average pooling with ``stride == kernel``."""
    n, c, h, w = x.shape
    ho, wo = h // kernel, w // kernel
    out = x._make(_avg_pool2d_forward((kernel,), x.data), (x,))
    if out.requires_grad:
        inv = 1.0 / (kernel * kernel)

        def _bw(g: np.ndarray) -> None:
            gb = np.broadcast_to(g[:, :, :, None, :, None] * inv,
                                 (n, c, ho, kernel, wo, kernel))
            x._accum(gb.reshape(n, c, h, w).copy())

        out._backward = _bw
    K.record("avg_pool2d", (kernel,), (x,), out)
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    val = K.forward("softmax", (axis,), x.data)
    out = x._make(val, (x,))
    if out.requires_grad:
        def _bw(g: np.ndarray) -> None:
            gy = g * val
            x._accum(gy - val * gy.sum(axis=axis, keepdims=True))

        out._backward = _bw
    K.record("softmax", (axis,), (x,), out)
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    val = K.forward("log_softmax", (axis,), x.data)
    out = x._make(val, (x,))
    if out.requires_grad:
        sm = np.exp(val)

        def _bw(g: np.ndarray) -> None:
            x._accum(g - sm * g.sum(axis=axis, keepdims=True))

        out._backward = _bw
    K.record("log_softmax", (axis,), (x,), out)
    return out


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last axis, with affine parameters."""
    xhat, inv = K._layer_norm_stats(x.data, eps)
    val = xhat * weight.data + bias.data
    out = x._make(val, (x, weight, bias))
    if out.requires_grad:
        def _bw(g: np.ndarray) -> None:
            if bias.requires_grad:
                bias._accum(_unbroadcast(g, bias.shape))
            if weight.requires_grad:
                weight._accum(_unbroadcast(g * xhat, weight.shape))
            if x.requires_grad:
                gx_hat = g * weight.data
                term1 = gx_hat
                term2 = gx_hat.mean(axis=-1, keepdims=True)
                term3 = xhat * (gx_hat * xhat).mean(axis=-1, keepdims=True)
                x._accum(inv * (term1 - term2 - term3))

        out._backward = _bw
    K.record("layer_norm", (eps,), (x, weight, bias), out)
    return out


def _upsample_nearest2d_forward(params, x: np.ndarray):
    scale = params[0]
    return np.repeat(np.repeat(x, scale, axis=2), scale, axis=3)


K.register("upsample_nearest2d", _upsample_nearest2d_forward)


def upsample_nearest2d(x: Tensor, scale: int) -> Tensor:
    """Nearest-neighbour upsampling of an NCHW tensor by integer ``scale``."""
    n, c, h, w = x.shape
    out = x._make(_upsample_nearest2d_forward((scale,), x.data), (x,))
    if out.requires_grad:
        def _bw(g: np.ndarray) -> None:
            gb = g.reshape(n, c, h, scale, w, scale).sum(axis=(3, 5))
            x._accum(gb)

        out._backward = _bw
    K.record("upsample_nearest2d", (scale,), (x,), out)
    return out


def dropout(x: Tensor, p: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout: identity at eval time or when ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if K.tracing():
        raise RuntimeError(
            "cannot trace stochastic dropout: call model.eval() (or set "
            "p=0) before compiling an inference graph")
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep
    out = x._make(x.data * mask, (x,))
    if out.requires_grad:
        def _bw(g: np.ndarray) -> None:
            x._accum(g * mask)

        out._backward = _bw
    return out
