"""Async inference engine demo: queue -> continuous batcher -> runtime.

Walks the serving front-end end to end:
1. start an ``InferenceEngine`` on the real clock (warmup pre-compiles the
   bucket ladder), serve concurrent client threads via ``submit`` futures,
2. decompose a volume into bulk-lane slice jobs with ``submit_volume``,
3. trip admission control with a tiny queue (``EngineOverloaded`` + the
   retry-after hint),
4. rerun the same workload **deterministically** under the simulated clock
   with the load harness, and compare against the serial
   ``predict_image`` baseline.

Run:  PYTHONPATH=src python examples/engine_demo.py
"""

import json
import threading

import numpy as np

from repro.data import SyntheticPAIP
from repro.models import ViTSegmenter
from repro.pipeline import PatchPipeline
from repro.serve import (EngineOverloaded, InferenceEngine, Predictor,
                         ServiceModel, SimClock, merge_traces, poisson_trace,
                         run_load, serial_baseline)
from repro.train.tasks import prepare_image

RES, N_IMAGES, SPLIT = 64, 12, 8.0


def make_predictor(model):
    pipe = PatchPipeline(patch_size=4, split_value=SPLIT, channels=1,
                         cache_items=64)
    return Predictor(model, pipe, max_batch=8, bucket=32)


def main():
    ds = SyntheticPAIP(RES, N_IMAGES)
    imgs = [ds[i].image for i in range(N_IMAGES)]
    model = ViTSegmenter(patch_size=4, channels=1, dim=32, depth=2, heads=4,
                         max_len=512, rng=np.random.default_rng(0)).eval()

    # -- 1. threaded engine: concurrent clients over one Predictor -------
    engine = InferenceEngine(make_predictor(model), flush_deadline=0.01,
                             max_queue=64, warmup_lengths=(32, 64, 96))
    engine.start()                          # warms plans, spawns the batcher
    results = {}

    def client(i):
        results[i] = engine.submit(imgs[i % N_IMAGES]).result(timeout=60)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(16)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stats = engine.stats()
    print(f"threaded: {len(results)} futures resolved, "
          f"{stats['engine']['batches']} batches "
          f"(mean size {stats['engine']['batch_size']['mean']:.2f}), "
          f"{stats['engine']['cache_hits']} result-cache hits, "
          f"{stats['engine']['collapsed']} collapsed duplicates")

    # -- 2. bulk volume: decomposed into slice jobs, reassembled ---------
    volume = np.stack([prepare_image(im, 1)[0] for im in imgs[:6]])
    classes = engine.submit_volume(volume, lane="bulk").result(timeout=60)
    print(f"volume {volume.shape} -> class map {classes.shape} "
          f"(classes {np.unique(classes)})")
    engine.stop()

    # -- 3. admission control -------------------------------------------
    tiny = InferenceEngine(make_predictor(model), max_queue=2,
                           flush_deadline=60.0)
    tiny.submit(imgs[0])
    tiny.submit(imgs[1])
    try:
        tiny.submit(imgs[2])
    except EngineOverloaded as exc:
        print(f"admission control: {exc} (retry after ~{exc.retry_after:.3f}s)")
    tiny.drain()

    # -- 4. deterministic simulated load vs the serial baseline ----------
    clock = SimClock()
    pred = make_predictor(model)
    sim = InferenceEngine(pred, clock=clock.now, service_model=ServiceModel(),
                          flush_deadline=0.02, max_queue=64,
                          result_cache_items=0)
    trace = merge_traces(*[poisson_trace(12.0, 12, seed=100 + c,
                                         n_items=N_IMAGES)
                           for c in range(8)])
    report = run_load(sim, trace, imgs, clock)
    ordered = sorted(trace, key=lambda a: (a.time, a.lane, a.item))
    lengths = [pred.bucket_length(len(pred._naturals([imgs[a.item]],
                                                     [a.item])[0]))
               for a in ordered]
    serial = serial_baseline(trace, lengths, ServiceModel())
    print(f"simulated load (8 clients): engine {report['throughput']:.1f} "
          f"req/s vs serial {serial['throughput']:.1f} req/s "
          f"-> {report['throughput'] / serial['throughput']:.2f}x")
    print("virtual latency: " + json.dumps(
        {k: round(report['latency'][k], 4) for k in ('p50', 'p95', 'p99')}))


if __name__ == "__main__":
    main()
