"""``repro.patching`` — the Adaptive Patch Framework (APF) and its baseline.

* :class:`AdaptivePatcher` / :class:`APFConfig` — paper Alg. 1 preprocessing
* :class:`UniformPatcher` — traditional grid patching baseline
* :class:`PatchSequence` — the shared model-input container
"""

from .adaptive import AdaptivePatcher, APFConfig
from .cache import CachingPatcher, LRUPatchCache, PatchCache
from .sequence import PatchSequence
from .uniform import UniformPatcher, uniform_sequence_length
from .volumetric import (VolumeAPFConfig, VolumeSequence,
                         VolumetricAdaptivePatcher)

__all__ = ["AdaptivePatcher", "APFConfig", "PatchSequence", "UniformPatcher",
           "uniform_sequence_length", "CachingPatcher", "PatchCache",
           "LRUPatchCache",
           "VolumetricAdaptivePatcher", "VolumeAPFConfig", "VolumeSequence"]
