"""``repro.sparse`` — the inference-time token-sparsity fast path.

The quadtree already measured every patch's detail (the Eq. 6 region mass
that decided not to split it); this package stops throwing that signal
away at predict time. Three cooperating mechanisms, chosen per sequence
by a calibrated cost model and executed through the shared
:class:`~repro.serve.scheduler.WorkGraphScheduler` so every front-end
(Predictor, InferenceEngine, FleetRouter, StreamingRunner) gets them:

* **background short-circuit** — provably flat tokens route around the
  transformer to a digest-keyed logits table;
* **token merging** — runs of identical-digest tokens collapse to one
  representative and fan back out before the stitch;
* **plan chooser** — :mod:`repro.perf` FLOP accounting ranks dense vs.
  reduced plans and picks the cheapest within the quality budget.
"""

from .chooser import PlanChoice, PlanChooser
from .config import SparsityConfig
from .digest import quantize_tokens, sequence_digest, token_digests
from .plans import (SparsePlan, background_mask, merge_plan,
                    shortcircuit_plan, take_tokens)
from .runtime import SparseRuntime
from .table import BackgroundTable, SequenceMemo

__all__ = [
    "SparsityConfig", "SparseRuntime",
    "PlanChooser", "PlanChoice",
    "SparsePlan", "background_mask", "shortcircuit_plan", "merge_plan",
    "take_tokens",
    "BackgroundTable", "SequenceMemo",
    "quantize_tokens", "token_digests", "sequence_digest",
]
