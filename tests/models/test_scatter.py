"""Tests for the differentiable token->grid scatter."""

import numpy as np
import pytest

from repro import nn
from repro.models import scatter_tokens_to_grid, token_index_map
from repro.patching import AdaptivePatcher, UniformPatcher


def blob(z=32, seed=0):
    rng = np.random.default_rng(seed)
    img = np.full((z, z), 0.3)
    img[8:18, 10:22] = 0.9
    return img


class TestTokenIndexMap:
    def test_uniform_is_row_major_grid(self):
        seq = UniformPatcher(4)(np.zeros((16, 16)))
        idx, mask = token_index_map(seq, 4)
        np.testing.assert_array_equal(idx, np.arange(16).reshape(4, 4))
        np.testing.assert_array_equal(mask, 1.0)

    def test_adaptive_footprints(self):
        seq = AdaptivePatcher(patch_size=4, split_value=2.0)(blob())
        idx, mask = token_index_map(seq, 4)
        assert mask.min() == 1.0  # no drops → full coverage
        # Every valid token appears; every cell maps to the leaf covering it.
        for i in np.flatnonzero(seq.valid):
            y, x, s = seq.ys[i] // 4, seq.xs[i] // 4, max(seq.sizes[i] // 4, 1)
            assert (idx[y:y + s, x:x + s] == i).all()

    def test_dropped_tokens_leave_holes(self):
        p = AdaptivePatcher(patch_size=2, split_value=0.5, target_length=8)
        seq = p(blob())
        assert seq.n_dropped > 0
        _, mask = token_index_map(seq, 2)
        assert mask.min() == 0.0

    def test_indivisible_cell_raises(self):
        seq = UniformPatcher(4)(np.zeros((16, 16)))
        with pytest.raises(ValueError):
            token_index_map(seq, 3)


class TestScatter:
    def test_uniform_scatter_is_reshape(self):
        seq = UniformPatcher(4)(np.zeros((16, 16)))
        feats = nn.Tensor(np.arange(16 * 3, dtype=np.float64).reshape(1, 16, 3),
                          requires_grad=True)
        grid = scatter_tokens_to_grid(feats, [seq], 4)
        assert grid.shape == (1, 3, 4, 4)
        np.testing.assert_array_equal(grid.data[0, 0],
                                      feats.data[0, :, 0].reshape(4, 4))

    def test_gradient_routes_by_footprint_area(self):
        seq = AdaptivePatcher(patch_size=4, split_value=2.0)(blob())
        n = len(seq)
        feats = nn.Tensor(np.zeros((1, n, 2)), requires_grad=True)
        grid = scatter_tokens_to_grid(feats, [seq], 4)
        grid.sum().backward()
        # Each token's gradient = number of grid cells it covers.
        expected = (np.maximum(seq.sizes // 4, 1) ** 2).astype(float)
        np.testing.assert_allclose(feats.grad[0, :, 0], expected)

    def test_batch_mismatch_raises(self):
        seq = UniformPatcher(4)(np.zeros((16, 16)))
        feats = nn.Tensor(np.zeros((2, 16, 3)))
        with pytest.raises(ValueError):
            scatter_tokens_to_grid(feats, [seq], 4)

    def test_length_mismatch_raises(self):
        seq = UniformPatcher(4)(np.zeros((16, 16)))
        feats = nn.Tensor(np.zeros((1, 15, 3)))
        with pytest.raises(ValueError):
            scatter_tokens_to_grid(feats, [seq], 4)

    def test_holes_get_zero_and_no_grad(self):
        p = AdaptivePatcher(patch_size=2, split_value=0.5, target_length=6)
        seq = p(blob())
        feats = nn.Tensor(np.ones((1, 6, 1)), requires_grad=True)
        grid = scatter_tokens_to_grid(feats, [seq], 2)
        _, mask = token_index_map(seq, 2)
        np.testing.assert_array_equal(grid.data[0, 0][mask == 0], 0.0)
