"""Tests for drop strategies and ordering options of the adaptive patcher."""

import numpy as np
import pytest

from repro.data import generate_wsi
from repro.patching import AdaptivePatcher, APFConfig


def busy_image(z=64):
    return generate_wsi(z, seed=3).image.mean(axis=2)


class TestDropStrategies:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            APFConfig(drop_strategy="smallest-first")

    def test_coarsest_first_keeps_fine_leaves(self):
        img = busy_image()
        p_nat = AdaptivePatcher(patch_size=2, split_value=1.0)
        natural = p_nat.extract_natural(img)
        target = len(natural) // 2
        rand = AdaptivePatcher(patch_size=2, split_value=1.0,
                               target_length=target)(img)
        smart = AdaptivePatcher(patch_size=2, split_value=1.0,
                                target_length=target,
                                drop_strategy="coarsest-first")(img)
        assert len(rand) == len(smart) == target
        # Coarsest-first must retain at least as many finest leaves.
        fine = natural.sizes.min()
        assert (smart.sizes == fine).sum() >= (rand.sizes == fine).sum()
        # And it drops the biggest leaves first: max retained size <= random's.
        assert smart.sizes[smart.valid].max() <= rand.sizes[rand.valid].max()

    def test_coarsest_first_detail_coverage(self):
        # The retained area under coarsest-first covers less total area but
        # more edge detail per token.
        img = busy_image()
        p = AdaptivePatcher(patch_size=2, split_value=1.0, target_length=40,
                            drop_strategy="coarsest-first")
        seq = p(img)
        assert seq.coverage_fraction() < 1.0
        assert seq.n_dropped > 0

    def test_strategies_identical_when_no_drop(self):
        img = busy_image()
        nat_len = len(AdaptivePatcher(patch_size=4, split_value=2.0)
                      .extract_natural(img))
        a = AdaptivePatcher(patch_size=4, split_value=2.0,
                            target_length=nat_len)(img)
        b = AdaptivePatcher(patch_size=4, split_value=2.0,
                            target_length=nat_len,
                            drop_strategy="coarsest-first")(img)
        np.testing.assert_array_equal(a.ys, b.ys)

    def test_coarsest_first_tiebreak_is_seeded(self):
        img = busy_image()
        kw = dict(patch_size=2, split_value=1.0, target_length=30,
                  drop_strategy="coarsest-first")
        s1 = AdaptivePatcher(seed=5, **kw)(img)
        s2 = AdaptivePatcher(seed=5, **kw)(img)
        np.testing.assert_array_equal(s1.ys, s2.ys)


class TestHilbertOrdering:
    def test_hilbert_improves_sequence_locality(self):
        img = busy_image()
        def mean_step(order):
            seq = AdaptivePatcher(patch_size=4, split_value=1.0,
                                  order=order)(img)
            cy = seq.ys + seq.sizes / 2.0
            cx = seq.xs + seq.sizes / 2.0
            return float(np.hypot(np.diff(cy), np.diff(cx)).mean())

        assert mean_step("hilbert") <= mean_step("morton") + 1e-9
        assert mean_step("morton") < mean_step("rowmajor")
