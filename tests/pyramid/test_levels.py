"""Tests for the tile pyramid: geometry, downsampling, digests, caching."""

import numpy as np
import pytest

from repro.pipeline.engine import content_key
from repro.pyramid import PyramidTile, TilePyramid
from repro.stream.source import ArraySource, VirtualWSISource


def _array_source(h=256, w=256, channels=3, seed=0):
    rng = np.random.default_rng(seed)
    shape = (h, w, channels) if channels else (h, w)
    return ArraySource(rng.random(shape))


class TestGeometry:
    def test_level_ladder(self):
        py = TilePyramid(VirtualWSISource(2048, tile=256), tile=256)
        assert py.n_levels == 4                 # 2048 -> 1024 -> 512 -> 256
        assert py.level_shape(0) == (2048, 2048)
        assert py.level_shape(3) == (256, 256)
        assert py.grid(0) == (8, 8)
        assert py.grid(3) == (1, 1)

    def test_max_level_cap(self):
        py = TilePyramid(VirtualWSISource(2048, tile=256), tile=256,
                         max_level=1)
        assert py.n_levels == 2

    def test_non_square_scene(self):
        py = TilePyramid(_array_source(h=512, w=256), tile=128)
        assert py.n_levels == 2
        assert py.grid(0) == (4, 2)
        assert py.grid(1) == (2, 1)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            TilePyramid(_array_source(), tile=100)      # not a power of two
        with pytest.raises(ValueError):
            TilePyramid(_array_source(h=200, w=256), tile=128)  # no divide
        with pytest.raises(ValueError):
            TilePyramid(_array_source(), tile=128, cache_tiles=2)

        class NotImage:
            kind = "volume"
            shape = (8, 256, 256)
        with pytest.raises(ValueError):
            TilePyramid(NotImage())

    def test_parent_child_roundtrip(self):
        py = TilePyramid(_array_source(h=512, w=512), tile=128)
        t = PyramidTile(0, 3, 1)
        parent = py.parent(t)
        assert parent == PyramidTile(1, 1, 0)
        assert t in py.children(parent)
        assert py.parent(PyramidTile(py.n_levels - 1, 0, 0)) is None
        assert py.children(PyramidTile(0, 0, 0)) == []

    def test_viewport_cover_clamps(self):
        py = TilePyramid(_array_source(h=512, w=512), tile=128)
        full = py.viewport_tiles(0, (0, 0), (512, 512))
        assert len(full) == 16
        # off-slide window clamps to the visible intersection
        edge = py.viewport_tiles(0, (-100, 400), (256, 256))
        assert edge == [PyramidTile(0, 0, 3), PyramidTile(0, 1, 3)]
        assert py.viewport_tiles(0, (600, 600), (64, 64)) == []

    def test_viewport_cover_is_exact(self):
        py = TilePyramid(_array_source(h=512, w=512), tile=128)
        tiles = py.viewport_tiles(0, (100, 100), (200, 200))
        # every returned tile intersects the window, none missing
        assert tiles == [PyramidTile(0, ty, tx)
                         for ty in (0, 1, 2) for tx in (0, 1, 2)]

    def test_out_of_range_rejected(self):
        py = TilePyramid(_array_source(), tile=128)
        with pytest.raises(ValueError):
            py.level_shape(py.n_levels)
        with pytest.raises(ValueError):
            py.tile_pixels(PyramidTile(0, 9, 0))
        with pytest.raises(ValueError):
            py.viewport_tiles(0, (0, 0), (0, 100))


class TestPixels:
    def test_level0_matches_source(self):
        src = _array_source(h=256, w=256)
        py = TilePyramid(src, tile=128)
        got = py.tile_pixels(PyramidTile(0, 1, 0))
        np.testing.assert_array_equal(got,
                                      src.read_region((128, 0), (128, 128)))

    def test_downsample_is_mean_pool(self):
        src = _array_source(h=256, w=256)
        py = TilePyramid(src, tile=128)
        up = np.asarray(src.read_region((0, 0), (256, 256)), dtype=np.float64)
        expected = up.reshape(128, 2, 128, 2, -1).mean(axis=(1, 3))
        np.testing.assert_allclose(py.tile_pixels(PyramidTile(1, 0, 0)),
                                   expected)

    def test_grayscale_sources_supported(self):
        py = TilePyramid(_array_source(channels=0), tile=128)
        assert py.tile_pixels(PyramidTile(1, 0, 0)).shape == (128, 128)

    def test_pixels_deterministic_across_eviction(self):
        src = VirtualWSISource(1024, tile=256, seed=3, cache_tiles=4)
        t = PyramidTile(2, 0, 0)
        first = TilePyramid(src, tile=256, cache_tiles=4).tile_pixels(t)
        second = TilePyramid(src, tile=256, cache_tiles=4).tile_pixels(t)
        np.testing.assert_array_equal(first, second)

    def test_cache_hits_counted(self):
        py = TilePyramid(_array_source(), tile=128)
        t = PyramidTile(0, 0, 0)
        py.tile_pixels(t)
        py.tile_pixels(t)
        assert py.stats["cache_hits"] == 1
        assert py.stats["synthesized"] == 1

    def test_returned_tiles_are_frozen(self):
        py = TilePyramid(_array_source(), tile=128)
        px = py.tile_pixels(PyramidTile(0, 0, 0))
        with pytest.raises(ValueError):
            px[0, 0] = 0.0


class TestDigests:
    def test_digest_matches_content_key(self):
        py = TilePyramid(_array_source(), tile=128)
        t = PyramidTile(0, 0, 1)
        assert py.digest(t) == content_key(py.tile_pixels(t))

    def test_identical_pixels_same_digest(self):
        # A constant scene: every tile of every level digests identically.
        src = ArraySource(np.full((256, 256, 3), 0.5))
        py = TilePyramid(src, tile=128)
        digests = {py.digest(PyramidTile(level, ty, tx))
                   for level in range(py.n_levels)
                   for ty in range(py.grid(level)[0])
                   for tx in range(py.grid(level)[1])}
        assert len(digests) == 1

    def test_digest_survives_pixel_eviction(self):
        py = TilePyramid(_array_source(h=1024, w=1024), tile=128,
                         cache_tiles=4)
        t = PyramidTile(0, 0, 0)
        d = py.digest(t)
        for ty in range(8):              # churn the pixel LRU
            for tx in range(8):
                py.tile_pixels(PyramidTile(0, ty, tx))
        before = dict(py.stats)
        assert py.digest(t) == d         # memoized: no resynthesis
        assert py.stats == before

    def test_describe_is_jsonable(self):
        import json
        py = TilePyramid(_array_source(), tile=128)
        desc = py.describe()
        json.dumps(desc)
        assert desc["n_levels"] == py.n_levels
        assert desc["total_tiles"] == 4 + 1
