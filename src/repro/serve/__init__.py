"""``repro.serve`` — the inference serving stack.

One scheduler, several adapters:

* :class:`WorkGraphScheduler` (:mod:`.scheduler`) — the single truth for
  inference orchestration: tiles → sequences → micro-batches → stitch.
  Length bucketing, micro-batch formation, compiled per-signature plans
  (:mod:`repro.runtime`) and vectorized map stitching (:mod:`.stitch`)
  live here and nowhere else.
* :class:`Predictor` — the synchronous-drain adapter: cached APF
  preprocessing plus a blocking drain of the work graph.
* :class:`InferenceEngine` — the pump adapter over a shared Predictor:
  ``submit(image) -> Future``, continuous batching with a
  latency-deadline flush, weighted-fair priority lanes, digest-keyed
  result caching, admission control (:class:`EngineOverloaded`), and a
  metrics registry. :mod:`.loadgen` drives it deterministically under a
  simulated clock for CI-stable load tests.
* :class:`FleetRouter` — digest-affinity sharding over N engine replicas
  (:mod:`.router`, assembled by :func:`build_fleet`): rendezvous-hashed
  cache affinity, replica health/drain/kill with re-hash spill, and
  fleet-wide admission control. :func:`run_fleet_load` extends the DES to
  fleet topology (per-replica service models, routing delay, virtual-time
  replica-kill fault injection).
* :class:`~repro.stream.runner.StreamingRunner` (in :mod:`repro.stream`)
  — the bounded macro-tile feed over the same scheduler.
"""

from .engine import BatchReport, EngineConfig, InferenceEngine
from .fleet import FleetConfig, build_fleet
from .loadgen import (Arrival, ReplicaDrain, ReplicaKill, ServiceModel,
                      SimClock, merge_traces, poisson_trace, run_fleet_load,
                      run_load, serial_baseline)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .predictor import Predictor, predict_image
from .queueing import EngineOverloaded, FairQueue, Request
from .router import (REPLICA_DOWN, REPLICA_DRAINING, REPLICA_UP, FleetRouter,
                     Replica, rendezvous_order)
from .scheduler import (MicroBatch, SequenceNode, TileNode,
                        WorkGraphScheduler, class_map)
from .stitch import stitch_image, stitch_volume

__all__ = [
    "WorkGraphScheduler", "SequenceNode", "MicroBatch", "TileNode",
    "class_map",
    "Predictor", "predict_image", "stitch_image", "stitch_volume",
    "InferenceEngine", "EngineConfig", "BatchReport",
    "FairQueue", "Request", "EngineOverloaded",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "Arrival", "SimClock", "ServiceModel", "poisson_trace", "merge_traces",
    "run_load", "serial_baseline",
    "FleetRouter", "Replica", "rendezvous_order", "FleetConfig",
    "build_fleet", "ReplicaKill", "ReplicaDrain", "run_fleet_load",
    "REPLICA_UP", "REPLICA_DRAINING", "REPLICA_DOWN",
]
