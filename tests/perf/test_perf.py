"""Tests for FLOP models, the α–β cost model, and equal-cost analysis."""

import pytest

from repro.perf import (ClusterSpec, CostModel, TransformerConfig,
                        activation_bytes, apf_length_curve, attention_flops,
                        attention_memory_bytes, encoder_flops,
                        equal_cost_patch_size, equivalent_sequence_gain,
                        inference_flops, training_flops)


class TestFlops:
    def test_attention_quadratic_term_dominates_long_sequences(self):
        # Doubling L should ~4x attention cost when L >> D.
        d = 64
        f1 = attention_flops(4096, d)
        f2 = attention_flops(8192, d)
        assert 3.5 < f2 / f1 < 4.2

    def test_paper_uniform_scaling_o_zp4(self):
        # Uniform patching cost scales as (Z/P)^4 for the quadratic term.
        d = 64
        n1 = (512 // 8) ** 2
        n2 = (1024 // 8) ** 2
        quad1 = 4 * n1 ** 2 * d
        quad2 = 4 * n2 ** 2 * d
        assert quad2 / quad1 == pytest.approx(16.0)

    def test_encoder_scales_with_depth(self):
        c1 = TransformerConfig(256, 64, 4)
        c2 = TransformerConfig(256, 64, 8)
        assert encoder_flops(c2) == pytest.approx(2 * encoder_flops(c1))

    def test_training_is_3x_forward(self):
        c = TransformerConfig(128, 32, 2)
        assert training_flops(c) == pytest.approx(3 * encoder_flops(c))

    def test_inference_is_forward_only(self):
        c = TransformerConfig(128, 32, 2)
        assert inference_flops(c) == pytest.approx(encoder_flops(c))
        assert inference_flops(c) == pytest.approx(training_flops(c) / 3)

    def test_attention_memory_quadratic(self):
        c1 = TransformerConfig(1024, 64, 4, heads=8)
        c2 = TransformerConfig(2048, 64, 4, heads=8)
        assert attention_memory_bytes(c2) == pytest.approx(
            4 * attention_memory_bytes(c1))

    def test_activation_bytes_positive_and_monotone(self):
        a = activation_bytes(TransformerConfig(128, 32, 2))
        b = activation_bytes(TransformerConfig(256, 32, 2))
        assert 0 < a < b

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TransformerConfig(0, 64, 4)


class TestCostModel:
    def test_calibration_reproduces_measurement(self):
        cm = CostModel()
        cfg = TransformerConfig(1024, 64, 4)
        cm.calibrate(cfg, measured_seconds_per_image=0.5)
        assert cm.seconds_per_image(cfg, world_size=1, param_bytes=0) == \
            pytest.approx(0.5)

    def test_sequence_reduction_speedup_shape(self):
        # 16384 -> 1024 tokens must give a large speedup (quadratic term).
        cm = CostModel()
        base = TransformerConfig(16384, 64, 4)
        apf = TransformerConfig(1024, 64, 4)
        s = cm.speedup(base, apf)
        assert s > 10  # paper's Table II 512-res row reports 7.5-12.7x

    def test_allreduce_zero_for_single_rank(self):
        assert CostModel().allreduce_seconds(1e9, 1) == 0.0

    def test_allreduce_monotone_in_bytes(self):
        cm = CostModel()
        assert cm.allreduce_seconds(2e9, 8) > cm.allreduce_seconds(1e9, 8)

    def test_allreduce_matches_ring_formula(self):
        # 2(W-1)/W * bytes * beta + 2(W-1) * alpha, with the paper's
        # Slingshot bandwidth once the ring spans nodes.
        spec = ClusterSpec()
        cm = CostModel(spec)
        w, nbytes = 8, 1e9
        expected = (2 * (w - 1) / w * nbytes * spec.beta_internode
                    + 2 * (w - 1) * spec.alpha)
        assert cm.allreduce_seconds(nbytes, w) == pytest.approx(expected)
        # Within a node the (slower per the paper: 50 GB/s) intra beta applies.
        w = 4
        expected = (2 * (w - 1) / w * nbytes * spec.beta
                    + 2 * (w - 1) * spec.alpha)
        assert cm.allreduce_seconds(nbytes, w) == pytest.approx(expected)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(achieved_flops=0)

    def test_compute_seconds_is_world_size_free(self):
        # Regression pin: compute_seconds_per_image used to accept (and
        # validate, and ignore) a world_size argument. The intended semantics
        # — data parallelism shards the dataset, not per-image work — mean
        # per-image compute has no W dependence at all, so the parameter is
        # gone and world size only enters through the all-reduce term.
        cm = CostModel()
        cfg = TransformerConfig(1024, 64, 4)
        with pytest.raises(TypeError):
            cm.compute_seconds_per_image(cfg, 8)
        base = cm.compute_seconds_per_image(cfg)
        # W>1 adds exactly the ring all-reduce on top of a W-free compute term.
        for w in (1, 4, 8):
            assert cm.seconds_per_image(cfg, world_size=w) == pytest.approx(
                base + cm.allreduce_seconds(50e6, w))

    def test_inference_seconds_and_calibration(self):
        cm = CostModel()
        cfg = TransformerConfig(1024, 64, 4)
        cm.calibrate_inference(cfg, measured_seconds=0.25)
        assert cm.inference_seconds(cfg) == pytest.approx(0.25)
        # Shorter sequences must be predicted strictly cheaper (the ordering
        # the sparsity plan chooser relies on).
        shorter = TransformerConfig(256, 64, 4)
        assert cm.inference_seconds(shorter) < cm.inference_seconds(cfg)

    def test_calibrate_validation(self):
        with pytest.raises(ValueError):
            CostModel().calibrate(TransformerConfig(8, 8, 1), 0.0)
        with pytest.raises(ValueError):
            CostModel().calibrate_inference(TransformerConfig(8, 8, 1), 0.0)


class TestEquivalence:
    def _curve(self):
        # Synthetic empirical curve: APF length grows ~linearly as patch shrinks
        # (the paper's observed sub-linear growth, Fig. 3).
        return {2: 4096, 4: 2048, 8: 1024, 16: 512, 32: 256}

    def test_equal_cost_patch_is_smaller(self):
        # Uniform 512/16 → 1024 tokens; APF fits 8 (1024 tokens) and even
        # smaller at deeper curves.
        p = equal_cost_patch_size(512, 16, self._curve())
        assert p is not None and p < 16

    def test_no_fit_returns_none(self):
        curve = {2: 10 ** 9}
        assert equal_cost_patch_size(512, 512, curve) is None

    def test_sequence_gain_matches_paper_claim_shape(self):
        # Paper: ~8x smaller patches ⇒ ~64x longer effective sequences.
        gain = equivalent_sequence_gain(512, 16, self._curve())
        assert gain >= 4.0  # (16/8)^2 at minimum with this curve

    def test_curve_from_real_patcher(self):
        from repro.data import generate_wsi
        imgs = [generate_wsi(64, seed=i).image for i in range(2)]
        curve = apf_length_curve(imgs, patch_sizes=[4, 8], split_value=8.0)
        assert set(curve) == {4, 8}
        assert curve[4] >= curve[8]  # finer patches → longer sequences
