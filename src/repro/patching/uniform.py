"""Uniform grid patching — the traditional ViT baseline (paper §II-B).

For an image of resolution Z and patch size P the sequence length is
``N = (Z/P)^2``; attention cost grows as ``O((Z/P)^4)``, which is exactly the
scaling APF attacks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .sequence import PatchSequence

__all__ = ["UniformPatcher", "uniform_sequence_length"]


def uniform_sequence_length(resolution: int, patch: int) -> int:
    """``N = (Z/P)^2`` (paper §II-B)."""
    if resolution % patch:
        raise ValueError(f"patch {patch} must divide resolution {resolution}")
    return (resolution // patch) ** 2


class UniformPatcher:
    """Split an image into a regular grid of ``P x P`` patches, row-major.

    The output :class:`PatchSequence` uses the same container as adaptive
    patching so every downstream model is agnostic to the patching strategy —
    the property the paper's "works with any model" claim rests on.

    Parameters
    ----------
    patch_size:
        Grid cell size P.
    project_to:
        Optional model patch size ``Pm < P``: every grid patch is area-
        downscaled to ``Pm`` before being emitted. This models the practical
        reality of enormous uniform patches (the paper's ViT-4096 at 16K^2 in
        Table V): their fine detail is destroyed by the projection. Uniform +
        ``project_to`` is the comparator APF beats at equal token budget.
    """

    def __init__(self, patch_size: int, project_to: Optional[int] = None):
        if patch_size < 1:
            raise ValueError("patch_size must be >= 1")
        if project_to is not None:
            if project_to < 1 or patch_size % project_to:
                raise ValueError(f"project_to ({project_to}) must divide "
                                 f"patch_size ({patch_size})")
        self.patch_size = patch_size
        self.project_to = project_to

    def __call__(self, image: np.ndarray) -> PatchSequence:
        return self.extract(image)

    def extract(self, image: np.ndarray) -> PatchSequence:
        """Patchify (H, W) or (H, W, C) into a row-major PatchSequence."""
        img = np.asarray(image, dtype=np.float64)
        if img.ndim == 2:
            img = img[:, :, None]
        h, w, c = img.shape
        if h != w:
            raise ValueError(f"expected square image, got {img.shape}")
        p = self.patch_size
        if h % p:
            raise ValueError(f"patch {p} must divide image size {h}")
        g = h // p
        # (g, p, g, p, c) -> (g*g, c, p, p)
        patches = (img.reshape(g, p, g, p, c)
                   .transpose(0, 2, 4, 1, 3)
                   .reshape(g * g, c, p, p))
        pm = self.project_to or p
        if pm != p:
            f = p // pm
            patches = patches.reshape(g * g, c, pm, f, pm, f).mean(axis=(3, 5))
        ys, xs = np.mgrid[0:g, 0:g]
        n = g * g
        return PatchSequence(
            patches=patches,
            ys=(ys.ravel() * p).astype(np.int64),
            xs=(xs.ravel() * p).astype(np.int64),
            sizes=np.full(n, p, dtype=np.int64),
            valid=np.ones(n, dtype=bool),
            image_size=h,
            patch_size=pm,
            n_real=n,
        )

    def reconstruct(self, seq: PatchSequence) -> np.ndarray:
        """Inverse of :meth:`extract` — returns (C, Z, Z)."""
        return seq.scatter_to_image(seq.patches)
