"""Vanilla ViT backbone plus segmentation / classification heads.

The backbone is the unmodified ViT of Dosovitskiy et al. — APF's contract is
that the attention mechanism and architecture stay intact, so this module
contains *zero* APF-specific branches: it consumes whatever
:func:`repro.models.embedding.collate_sequences` produces.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .. import nn
from ..patching import PatchSequence
from .embedding import PatchEmbedding, collate_sequences

__all__ = ["ViTBackbone", "ViTSegmenter", "VolumeViTSegmenter",
           "ViTClassifier"]


class ViTBackbone(nn.Module):
    """Patch embedding + transformer encoder stack.

    The forward is split into two shape-stable halves so the compiled
    runtime (:mod:`repro.runtime`) can trace it once per input signature:

    * :meth:`prepare_inputs` — pure numpy preprocessing (dtype casts and
      the mask/bias features derived from ``valid``), shared verbatim by
      the eager forward and the compiled executor;
    * :meth:`forward_core` — pure Tensor-op graph over those prepared
      inputs, with no data-dependent branching.

    ``forward(tokens, coords, valid)`` is exactly
    ``forward_core(**prepare_inputs(...))``, which is what makes compiled
    outputs bit-identical to the eager ``no_grad`` forward.
    """

    def __init__(self, token_dim: int, dim: int = 64, depth: int = 4,
                 heads: int = 4, max_len: int = 1024, mlp_ratio: float = 2.0,
                 use_coords: bool = True, coord_dim: int = 3,
                 rng: Optional[np.random.Generator] = None, dtype=np.float32):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.embed = PatchEmbedding(token_dim, dim, max_len,
                                    use_coords=use_coords, coord_dim=coord_dim,
                                    rng=rng, dtype=dtype)
        self.encoder = nn.TransformerEncoder(dim, depth, heads, mlp_ratio,
                                             rng=rng, dtype=dtype)
        self.dim = dim
        self.depth = depth

    def prepare_inputs(self, tokens: np.ndarray, coords=None, valid=None
                       ) -> dict:
        """Numpy feeds for :meth:`forward_core`, keyed by argument name."""
        dtype = self.embed.dtype
        feeds = {"tokens": np.asarray(tokens).astype(dtype)}
        if self.embed.use_coords and coords is not None:
            feeds["coords"] = np.asarray(coords).astype(dtype)
        if valid is not None:
            valid = np.asarray(valid)
            feeds["validf"] = valid.astype(dtype)[:, :, None]
            feeds["attn_bias"] = nn.attention_bias(valid, dtype)
        return feeds

    def forward_core(self, tokens: nn.Tensor, coords: Optional[nn.Tensor] = None,
                     validf: Optional[nn.Tensor] = None,
                     attn_bias: Optional[nn.Tensor] = None) -> nn.Tensor:
        """Pure Tensor-op forward over prepared inputs (traceable)."""
        x = self.embed(tokens, coords, validf)
        return self.encoder(x, attn_bias=attn_bias)

    def forward(self, tokens: np.ndarray, coords=None, valid=None,
                return_hidden: Sequence[int] = ()):
        if return_hidden:
            # Multi-output tap path (UNETR skips) — eager only.
            x = self.embed(tokens, coords, valid)
            return self.encoder(x, return_hidden=return_hidden, key_mask=valid)
        feeds = self.prepare_inputs(tokens, coords, valid)
        return self.forward_core(
            **{name: nn.Tensor(arr) for name, arr in feeds.items()})


class ViTSegmenter(nn.Module):
    """ViT with a per-token segmentation head.

    Each token predicts a ``Pm x Pm`` logit map for its own patch footprint;
    training is supervised directly at token level (targets from
    ``AdaptivePatcher.patchify_labels``), and full-resolution masks are
    reconstructed by scattering token predictions back through the quadtree
    geometry.
    """

    def __init__(self, patch_size: int, channels: int = 1, dim: int = 64,
                 depth: int = 4, heads: int = 4, max_len: int = 1024,
                 out_channels: int = 1, use_coords: bool = True,
                 mlp_ratio: float = 2.0,
                 rng: Optional[np.random.Generator] = None, dtype=np.float32):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        token_dim = channels * patch_size * patch_size
        self.backbone = ViTBackbone(token_dim, dim, depth, heads, max_len,
                                    mlp_ratio=mlp_ratio,
                                    use_coords=use_coords, rng=rng, dtype=dtype)
        self.head = nn.Linear(dim, out_channels * patch_size * patch_size,
                              rng=rng, dtype=dtype)
        self.patch_size = patch_size
        self.out_channels = out_channels

    def prepare_inputs(self, tokens: np.ndarray, coords=None, valid=None) -> dict:
        return self.backbone.prepare_inputs(tokens, coords, valid)

    def forward_core(self, tokens: nn.Tensor, coords=None, validf=None,
                     attn_bias=None) -> nn.Tensor:
        return self.head(self.backbone.forward_core(tokens, coords, validf,
                                                    attn_bias))

    def forward(self, tokens: np.ndarray, coords=None, valid=None) -> nn.Tensor:
        """Token logits of shape (B, L, out_channels * Pm * Pm)."""
        return self.head(self.backbone(tokens, coords, valid))

    def forward_sequences(self, seqs: Sequence[PatchSequence]) -> nn.Tensor:
        tokens, coords, valid = collate_sequences(seqs)
        return self.forward(tokens, coords, valid)

    def predict_mask(self, seq: PatchSequence) -> np.ndarray:
        """Inference: full-resolution (out_channels, Z, Z) probability map."""
        with nn.no_grad():
            logits = self.forward_sequences([seq])
        pm, k = self.patch_size, self.out_channels
        token_maps = logits.data[0].reshape(len(seq), k, pm, pm)
        probs = 1.0 / (1.0 + np.exp(-token_maps))
        return seq.scatter_to_image(probs)


class VolumeViTSegmenter(nn.Module):
    """ViT with a per-token segmentation head over octree cube tokens.

    The volumetric counterpart of :class:`ViTSegmenter`: each token predicts
    a ``Pm³`` logit cube for its own footprint, supervised at token level
    (targets from ``VolumetricAdaptivePatcher.patchify_labels``); full
    volumes are reconstructed by scattering token predictions back through
    the octree geometry. The backbone is the same unmodified ViT — only the
    token and coordinate widths change (``Pm³`` and 4).
    """

    def __init__(self, patch_size: int, dim: int = 64, depth: int = 4,
                 heads: int = 4, max_len: int = 1024, out_channels: int = 1,
                 use_coords: bool = True,
                 rng: Optional[np.random.Generator] = None, dtype=np.float32):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        token_dim = patch_size ** 3
        self.backbone = ViTBackbone(token_dim, dim, depth, heads, max_len,
                                    use_coords=use_coords, coord_dim=4,
                                    rng=rng, dtype=dtype)
        self.head = nn.Linear(dim, out_channels * token_dim, rng=rng,
                              dtype=dtype)
        self.patch_size = patch_size
        self.out_channels = out_channels

    def prepare_inputs(self, tokens: np.ndarray, coords=None, valid=None) -> dict:
        return self.backbone.prepare_inputs(tokens, coords, valid)

    def forward_core(self, tokens: nn.Tensor, coords=None, validf=None,
                     attn_bias=None) -> nn.Tensor:
        return self.head(self.backbone.forward_core(tokens, coords, validf,
                                                    attn_bias))

    def forward(self, tokens: np.ndarray, coords=None, valid=None) -> nn.Tensor:
        """Token logits of shape (B, L, out_channels * Pm³)."""
        return self.head(self.backbone(tokens, coords, valid))

    def forward_sequences(self, seqs: Sequence) -> nn.Tensor:
        tokens, coords, valid = collate_sequences(seqs)
        return self.forward(tokens, coords, valid)

    def predict_volume_probs(self, seq) -> np.ndarray:
        """Inference: full-resolution (Z, Z, Z) probability volume (the
        first output channel, scattered through the octree geometry)."""
        with nn.no_grad():
            logits = self.forward_sequences([seq])
        pm = self.patch_size
        token_maps = logits.data[0].reshape(len(seq), self.out_channels,
                                            pm, pm, pm)
        probs = 1.0 / (1.0 + np.exp(-token_maps[:, 0]))
        return seq.scatter_to_volume(probs)


class ViTClassifier(nn.Module):
    """ViT with masked mean pooling and a linear classification head
    (Table V: APF-ViT vs HIPT)."""

    def __init__(self, patch_size: int, channels: int = 3, dim: int = 64,
                 depth: int = 4, heads: int = 4, max_len: int = 1024,
                 num_classes: int = 6, use_coords: bool = True,
                 rng: Optional[np.random.Generator] = None, dtype=np.float32):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        token_dim = channels * patch_size * patch_size
        self.backbone = ViTBackbone(token_dim, dim, depth, heads, max_len,
                                    use_coords=use_coords, rng=rng, dtype=dtype)
        self.head = nn.Linear(dim, num_classes, rng=rng, dtype=dtype)
        self.num_classes = num_classes
        self.dtype = dtype

    def prepare_inputs(self, tokens: np.ndarray, coords=None, valid=None) -> dict:
        feeds = self.backbone.prepare_inputs(tokens, coords, valid)
        if valid is not None:
            w = np.asarray(valid).astype(self.dtype)
            denom = np.maximum(w.sum(axis=1, keepdims=True), 1.0)
            feeds["poolw"] = (w / denom)[:, :, None]
        return feeds

    def forward_core(self, tokens: nn.Tensor, coords=None, validf=None,
                     attn_bias=None, poolw=None) -> nn.Tensor:
        x = self.backbone.forward_core(tokens, coords, validf, attn_bias)
        # Masked mean pooling: padded tokens carry zero weight.
        pooled = x.mean(axis=1) if poolw is None else (x * poolw).sum(axis=1)
        return self.head(pooled)

    def forward(self, tokens: np.ndarray, coords=None,
                valid: Optional[np.ndarray] = None) -> nn.Tensor:
        """Class logits (B, num_classes)."""
        feeds = self.prepare_inputs(tokens, coords, valid)
        return self.forward_core(
            **{name: nn.Tensor(arr) for name, arr in feeds.items()})

    def forward_sequences(self, seqs: Sequence[PatchSequence]) -> nn.Tensor:
        tokens, coords, valid = collate_sequences(seqs)
        return self.forward(tokens, coords, valid)

    def predict(self, seq: PatchSequence) -> int:
        with nn.no_grad():
            logits = self.forward_sequences([seq])
        return int(np.argmax(logits.data[0]))
