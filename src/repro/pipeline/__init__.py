"""``repro.pipeline`` — batched, parallel, cached APF preprocessing.

The scale-out layer over :mod:`repro.patching`:

* :class:`BatchedAdaptivePatcher` — bit-identical batch kernels for
  Algorithm 1 stages 1-5 (screened sparse Canny, level-synchronous batched
  quadtree, batch-grouped gather)
* :class:`BatchedVolumetricPatcher` — the 3-D analogue: exact-replay
  gradient detail + level-synchronous batched octree + vectorized cube
  gather, bit-identical to the per-volume patcher
* :class:`PatchPipeline` — worker pool + LRU sequence cache + fixed-length
  collation front-end, dimension-generic over both patchers
* :class:`CollatedBatch` / :func:`collate_batch` — the ``(B, L, C·Pm²)``
  (or ``(B, L, Pm³)``) token tensor + validity mask hand-off to
  :mod:`repro.models`
"""

from .batched import BatchedAdaptivePatcher
from .collate import CollatedBatch, collate_batch
from .engine import PatchPipeline
from .volumetric import BatchedVolumetricPatcher

__all__ = ["BatchedAdaptivePatcher", "BatchedVolumetricPatcher",
           "PatchPipeline", "CollatedBatch", "collate_batch"]
