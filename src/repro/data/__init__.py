"""``repro.data`` — synthetic dataset substrates (see DESIGN.md §1 for the
substitution rationale: PAIP and BTCV are not redistributable/offline).

* :mod:`repro.data.synthetic_paip` — pathology-like WSIs with lesion masks
* :mod:`repro.data.synthetic_btcv` — CT-like slices with 13 organ classes
* :mod:`repro.data.dataset` — lazy datasets, 0.7/0.1/0.2 splits, loader
"""

from .dataset import (DataLoader, Subset, SyntheticBTCV, SyntheticPAIP,
                      SyntheticVolumes, train_val_test_split)
from .synthetic_btcv import (BTCV_ORGANS, NUM_BTCV_CLASSES, BTCVSample,
                             generate_ct_slice)
from .synthetic_paip import NUM_ORGAN_CLASSES, PAIPSample, generate_wsi
from .synthetic_volume import CTVolume, generate_ct_volume

__all__ = [
    "generate_wsi", "PAIPSample", "NUM_ORGAN_CLASSES",
    "generate_ct_slice", "BTCVSample", "NUM_BTCV_CLASSES", "BTCV_ORGANS",
    "generate_ct_volume", "CTVolume",
    "SyntheticPAIP", "SyntheticBTCV", "SyntheticVolumes", "Subset",
    "train_val_test_split", "DataLoader",
]
