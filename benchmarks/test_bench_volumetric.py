"""Volumetric (octree) APF extension bench: token reduction on 3-D CT.

Not a paper artifact — the future-work direction DESIGN.md §6 documents:
UNETR is natively 3-D, so the octree generalization shows how APF's savings
compound with dimensionality (reduction ratios are cubed, not squared).
"""

import numpy as np


def test_octree_token_reduction(once):
    from repro.data import generate_ct_volume
    from repro.patching import VolumetricAdaptivePatcher

    def measure():
        vol = generate_ct_volume(64, 64, seed=0)
        seq = VolumetricAdaptivePatcher(patch_size=4, split_value=8.0)(
            vol.volume)
        uniform = (64 // 4) ** 3
        return len(seq), uniform

    n_apf, n_uniform = once(measure)
    print(f"\noctree tokens {n_apf} vs uniform {n_uniform} "
          f"({n_uniform / n_apf:.1f}x reduction, "
          f"{(n_uniform / n_apf) ** 2:.0f}x attention reduction)")
    assert n_apf < n_uniform / 2


def test_octree_build_speed(benchmark):
    from repro.quadtree import build_octree

    rng = np.random.default_rng(0)
    detail = (rng.random((64, 64, 64)) > 0.97).astype(float)
    leaves = benchmark(build_octree, detail, 8.0, 4, 4)
    assert leaves.covers_exactly()
