"""Tests for process-memory tracking (RSS probes + traced-allocation peaks)."""

import tracemalloc

import numpy as np

from repro.perf import TracedMemory, current_rss_bytes, peak_rss_bytes


class TestRSSProbes:
    def test_current_rss_positive_on_linux(self):
        rss = current_rss_bytes()
        assert rss is None or rss > 0

    def test_peak_rss_at_least_current(self):
        peak = peak_rss_bytes()
        cur = current_rss_bytes()
        assert peak is None or peak > 0
        if peak is not None and cur is not None:
            assert peak >= cur // 2      # same order; peak is lifetime max


class TestTracedMemory:
    def test_sees_numpy_allocations(self):
        with TracedMemory() as mem:
            a = np.zeros((1024, 1024))   # 8 MiB
            mem.update()
            del a
        assert mem.peak_bytes >= 8 * 1024 * 1024
        assert not tracemalloc.is_tracing()

    def test_peak_survives_frees(self):
        with TracedMemory() as mem:
            for _ in range(3):
                a = np.zeros(1_000_000)  # 8 MB alive only inside the loop
                del a
        assert mem.peak_bytes >= 8_000_000
        # peak is per-instant, not cumulative: three sequential 8 MB
        # allocations never coexist
        assert mem.peak_bytes < 16_000_000

    def test_nested_scopes_measure_their_own_region(self):
        with TracedMemory() as outer:
            big = np.zeros(2_000_000)    # 16 MB held by the outer scope
            with TracedMemory() as inner:
                small = np.zeros(125_000)  # 1 MB
                del small
            del big
        assert tracemalloc.is_tracing() is False
        assert inner.peak_bytes >= 1_000_000
        assert inner.peak_bytes < 8_000_000     # excludes the outer 16 MB
        assert outer.peak_bytes >= 16_000_000

    def test_inner_scope_does_not_erase_outer_peak(self):
        with TracedMemory() as outer:
            transient = np.zeros(4_000_000)   # 32 MB, freed before inner
            del transient
            with TracedMemory() as inner:     # resets the global peak
                small = np.zeros(125_000)     # 1 MB
                del small
        # the pre-inner transient must survive the inner scope's reset
        assert outer.peak_bytes >= 32_000_000
        assert inner.peak_bytes < 8_000_000

    def test_exception_still_stops_tracing(self):
        try:
            with TracedMemory():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not tracemalloc.is_tracing()
