"""Batched-vs-single equivalence: the batched engine must reproduce the
reference per-image patcher bit-for-bit, including the random drop stream."""

import numpy as np
import pytest

from repro.data import generate_wsi
from repro.imaging import gaussian_blur, to_grayscale
from repro.imaging.canny import canny_edges
from repro.patching import AdaptivePatcher, APFConfig
from repro.pipeline import BatchedAdaptivePatcher
from repro.pipeline.batched import _blur3_exact, _sparse_canny
from repro.quadtree import build_quadtree, build_quadtree_batch


def images(res, n, start=0):
    return [generate_wsi(res, seed=start + s).image for s in range(n)]


def assert_seq_identical(a, b):
    np.testing.assert_array_equal(a.patches, b.patches)
    np.testing.assert_array_equal(a.ys, b.ys)
    np.testing.assert_array_equal(a.xs, b.xs)
    np.testing.assert_array_equal(a.sizes, b.sizes)
    np.testing.assert_array_equal(a.valid, b.valid)
    assert a.image_size == b.image_size
    assert a.patch_size == b.patch_size
    assert a.n_real == b.n_real
    assert a.n_dropped == b.n_dropped


class TestExactKernels:
    def test_blur3_bit_identical(self):
        for seed in range(4):
            g = to_grayscale(np.asarray(generate_wsi(64, seed=seed).image,
                                        dtype=np.float64))
            np.testing.assert_array_equal(_blur3_exact(g), gaussian_blur(g, 3))

    def test_sparse_canny_bit_identical(self):
        for seed in range(4):
            g = to_grayscale(np.asarray(generate_wsi(128, seed=seed).image,
                                        dtype=np.float64))
            f = gaussian_blur(g, 3) * 255.0
            ref = canny_edges(f, 100.0, 200.0)
            np.testing.assert_array_equal(_sparse_canny(f, 100.0, 200.0), ref)

    def test_sparse_canny_flat_image(self):
        f = np.full((32, 32), 90.0)
        assert not _sparse_canny(f, 100.0, 200.0).any()


class TestBatchedTree:
    def test_batch_matches_single_builds(self):
        details = [(generate_wsi(64, seed=s).image.mean(axis=2) > 0.5)
                   .astype(np.float64) for s in range(5)]
        batch = build_quadtree_batch(details, 4.0, 4, min_size=2)
        for d, t in zip(details, batch):
            ref = build_quadtree(d, 4.0, 4, min_size=2)
            np.testing.assert_array_equal(t.ys, ref.ys)
            np.testing.assert_array_equal(t.xs, ref.xs)
            np.testing.assert_array_equal(t.sizes, ref.sizes)
            np.testing.assert_array_equal(t.depths, ref.depths)
            assert t.nodes_visited == ref.nodes_visited
            assert t.size == ref.size

    def test_empty_batch(self):
        assert build_quadtree_batch([], 1.0, 4) == []

    def test_rejects_mixed_shapes(self):
        with pytest.raises(ValueError):
            build_quadtree_batch([np.zeros((8, 8)), np.zeros((16, 16))], 1.0, 3)


CONFIGS = [
    dict(patch_size=4, split_value=2.0),
    dict(patch_size=4, split_value=2.0, target_length=40),
    dict(patch_size=8, split_value=8.0, target_length=64),
    dict(patch_size=4, split_value=4.0, order="hilbert"),
    dict(patch_size=4, split_value=4.0, order="rowmajor"),
    dict(patch_size=4, split_value=2.0, criterion="variance"),
    dict(patch_size=2, split_value=1.0, balance=True),
    dict(patch_size=4, split_value=2.0, target_length=30,
         drop_strategy="coarsest-first"),
]


class TestBatchedEquivalence:
    @pytest.mark.parametrize("overrides", CONFIGS)
    def test_byte_identical_to_reference(self, overrides):
        imgs = images(64, 6)
        cfg = APFConfig(seed=7, **overrides)
        # Fresh patchers: both consume their drop RNG in image order.
        ref = AdaptivePatcher(cfg)
        singles = [ref.extract(im) for im in imgs]
        batched = BatchedAdaptivePatcher(cfg).extract_batch(imgs)
        assert len(batched) == len(imgs)
        for a, b in zip(singles, batched):
            assert_seq_identical(a, b)

    def test_grayscale_and_rgb_inputs(self):
        rgb = images(64, 3)
        gray = [im.mean(axis=2) for im in rgb]
        cfg = APFConfig(patch_size=4, split_value=2.0)
        ref = AdaptivePatcher(cfg)
        for imgs in (rgb, gray):
            for a, b in zip([ref.extract(im) for im in imgs],
                            BatchedAdaptivePatcher(cfg).extract_batch(imgs)):
                assert_seq_identical(a, b)

    def test_natural_batch_skips_drop(self):
        imgs = images(64, 3)
        bp = BatchedAdaptivePatcher(patch_size=4, split_value=1.0,
                                    target_length=10)
        nat = bp.extract_natural_batch(imgs)
        assert all(s.valid.all() for s in nat)
        assert any(len(s) != 10 for s in nat)

    def test_rng_stream_order_matches(self):
        # Drops depend on call order; batched must replay image order.
        imgs = images(64, 4)
        cfg = APFConfig(patch_size=2, split_value=0.5, target_length=12, seed=5)
        ref = AdaptivePatcher(cfg)
        singles = [ref.extract(im) for im in imgs]
        batched = BatchedAdaptivePatcher(cfg).extract_batch(imgs)
        for a, b in zip(singles, batched):
            assert_seq_identical(a, b)

    def test_single_image_api_unchanged(self):
        img = images(64, 1)[0]
        cfg = APFConfig(patch_size=4, split_value=2.0)
        assert_seq_identical(AdaptivePatcher(cfg)(img),
                             BatchedAdaptivePatcher(cfg)(img))

    def test_empty_batch(self):
        assert BatchedAdaptivePatcher(patch_size=4).extract_batch([]) == []

    def test_rejects_mixed_shapes(self):
        bp = BatchedAdaptivePatcher(patch_size=4, split_value=2.0)
        with pytest.raises(ValueError):
            bp.extract_batch([np.zeros((32, 32)), np.zeros((64, 64))])


class TestExtractNaturalThreadSafety:
    def test_config_not_mutated(self):
        cfg = APFConfig(patch_size=4, split_value=2.0, target_length=16)
        p = AdaptivePatcher(cfg)
        img = images(64, 1)[0]
        p.extract_natural(img)
        assert cfg.target_length == 16

    def test_concurrent_extract_natural(self):
        from concurrent.futures import ThreadPoolExecutor

        cfg = APFConfig(patch_size=4, split_value=2.0, target_length=16)
        p = AdaptivePatcher(cfg)
        imgs = images(64, 8)
        expected = [len(p.extract_natural(im)) for im in imgs]
        with ThreadPoolExecutor(max_workers=4) as pool:
            got = list(pool.map(lambda im: len(p.extract_natural(im)), imgs))
        assert got == expected
        assert cfg.target_length == 16
